#include "enumerate/csg.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/brute_force.h"
#include "analytics/counts.h"
#include "graph/bfs_numbering.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

/// Asserts the three EnumerateCsg guarantees (Theorem 1) on `graph`, which
/// must satisfy the BFS-numbering precondition: completeness, uniqueness,
/// and subset-before-superset order.
void ExpectCorrectEnumeration(const QueryGraph& graph) {
  const std::vector<NodeSet> emitted = CollectConnectedSubsets(graph);

  // Uniqueness (Lemma 10).
  std::set<uint64_t> seen;
  for (const NodeSet s : emitted) {
    EXPECT_TRUE(seen.insert(s.mask()).second) << "duplicate " << s.ToString();
  }

  // Completeness + soundness (Lemmas 2, 8): exactly the brute-force set.
  const std::vector<NodeSet> expected = BruteForceConnectedSubsets(graph);
  std::vector<uint64_t> emitted_masks;
  std::vector<uint64_t> expected_masks;
  for (const NodeSet s : emitted) emitted_masks.push_back(s.mask());
  for (const NodeSet s : expected) expected_masks.push_back(s.mask());
  std::sort(emitted_masks.begin(), emitted_masks.end());
  std::sort(expected_masks.begin(), expected_masks.end());
  EXPECT_EQ(emitted_masks, expected_masks);

  // Order validity (Lemma 12): every emitted set's connected proper
  // subsets appear before it.
  std::map<uint64_t, size_t> position;
  for (size_t i = 0; i < emitted.size(); ++i) {
    position[emitted[i].mask()] = i;
  }
  for (size_t i = 0; i < emitted.size(); ++i) {
    for (const NodeSet other : expected) {
      if (other != emitted[i] && other.IsSubsetOf(emitted[i])) {
        ASSERT_TRUE(position.contains(other.mask()));
        EXPECT_LT(position[other.mask()], i)
            << other.ToString() << " should precede " << emitted[i].ToString();
      }
    }
  }
}

TEST(EnumerateCsgTest, SingleNode) {
  Result<QueryGraph> graph = MakeChainQuery(1);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(CollectConnectedSubsets(*graph),
            std::vector<NodeSet>{NodeSet::Of({0})});
}

TEST(EnumerateCsgTest, PaperExampleGraph) {
  // The 5-node graph of Figure 6: 0-1, 0-2, 0-3, 1-4, 2-3, 2-4, 3-4.
  Result<QueryGraph> graph = QueryGraph::WithRelations(5);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(0, 2).ok());
  ASSERT_TRUE(graph->AddEdge(0, 3).ok());
  ASSERT_TRUE(graph->AddEdge(1, 4).ok());
  ASSERT_TRUE(graph->AddEdge(2, 3).ok());
  ASSERT_TRUE(graph->AddEdge(2, 4).ok());
  ASSERT_TRUE(graph->AddEdge(3, 4).ok());

  const std::vector<NodeSet> emitted = CollectConnectedSubsets(*graph);
  // The first emissions follow Figure 7: {4}, {3}, {3,4}, {2}, {2,3},
  // {2,4}, {2,3,4}, {1}, {1,4}, ...
  ASSERT_GE(emitted.size(), 9u);
  EXPECT_EQ(emitted[0], NodeSet::Of({4}));
  EXPECT_EQ(emitted[1], NodeSet::Of({3}));
  EXPECT_EQ(emitted[2], NodeSet::Of({3, 4}));
  EXPECT_EQ(emitted[3], NodeSet::Of({2}));
  EXPECT_EQ(emitted[4], NodeSet::Of({2, 3}));
  EXPECT_EQ(emitted[5], NodeSet::Of({2, 4}));
  EXPECT_EQ(emitted[6], NodeSet::Of({2, 3, 4}));
  EXPECT_EQ(emitted[7], NodeSet::Of({1}));
  EXPECT_EQ(emitted[8], NodeSet::Of({1, 4}));
  ExpectCorrectEnumeration(*graph);
}

struct ShapeCase {
  QueryShape shape;
  int n;
};

class EnumerateCsgShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(EnumerateCsgShapeTest, MatchesOracleAndClosedForm) {
  const ShapeCase param = GetParam();
  Result<QueryGraph> graph = MakeShapeQuery(param.shape, param.n);
  ASSERT_TRUE(graph.ok());
  ExpectCorrectEnumeration(*graph);
  EXPECT_EQ(CollectConnectedSubsets(*graph).size(),
            CsgCount(param.shape, param.n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EnumerateCsgShapeTest,
    ::testing::Values(ShapeCase{QueryShape::kChain, 2},
                      ShapeCase{QueryShape::kChain, 7},
                      ShapeCase{QueryShape::kChain, 12},
                      ShapeCase{QueryShape::kCycle, 3},
                      ShapeCase{QueryShape::kCycle, 8},
                      ShapeCase{QueryShape::kCycle, 12},
                      ShapeCase{QueryShape::kStar, 2},
                      ShapeCase{QueryShape::kStar, 7},
                      ShapeCase{QueryShape::kStar, 12},
                      ShapeCase{QueryShape::kClique, 2},
                      ShapeCase{QueryShape::kClique, 7},
                      ShapeCase{QueryShape::kClique, 10}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return std::string(QueryShapeName(info.param.shape)) +
             std::to_string(info.param.n);
    });

TEST(EnumerateCsgTest, GridGraph) {
  Result<QueryGraph> graph = MakeGridQuery(3, 3);
  ASSERT_TRUE(graph.ok());
  // Grid numbering from MakeGridQuery is row-major which is a valid BFS
  // numbering from node 0? It is not in general — so relabel first.
  Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 0);
  ASSERT_TRUE(numbering.ok());
  const QueryGraph relabeled = RelabelGraph(*graph, *numbering);
  ExpectCorrectEnumeration(relabeled);
}

TEST(EnumerateCsgTest, RandomGraphsAfterBfsRelabeling) {
  for (const uint64_t seed : {11u, 12u, 13u, 14u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(9, 4, config);
    ASSERT_TRUE(graph.ok());
    Result<BfsNumbering> numbering = ComputeBfsNumbering(*graph, 0);
    ASSERT_TRUE(numbering.ok());
    const QueryGraph relabeled = RelabelGraph(*graph, *numbering);
    ExpectCorrectEnumeration(relabeled);
  }
}

TEST(CountConnectedSubsetsTest, UncappedCountMatchesClosedForms) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {2, 5, 9, 13}) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      EXPECT_EQ(CountConnectedSubsetsUpTo(*graph, ~uint64_t{0}),
                CsgCount(shape, n))
          << QueryShapeName(shape) << n;
    }
  }
}

TEST(CountConnectedSubsetsTest, CapStopsEarly) {
  Result<QueryGraph> graph = MakeCliqueQuery(12);  // #csg = 4095.
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(CountConnectedSubsetsUpTo(*graph, 100), 100u);
  EXPECT_EQ(CountConnectedSubsetsUpTo(*graph, 1), 1u);
  EXPECT_EQ(CountConnectedSubsetsUpTo(*graph, 0), 0u);
  EXPECT_EQ(CountConnectedSubsetsUpTo(*graph, 1u << 20), 4095u);
}

TEST(EnumerateCsgTest, EnumerateCsgRecRespectsExclusion) {
  // On chain 0-1-2-3, growing from {1} with X = {0, 1} must never emit a
  // set containing 0.
  Result<QueryGraph> graph = MakeChainQuery(4);
  ASSERT_TRUE(graph.ok());
  std::vector<NodeSet> emitted;
  EnumerateCsgRec(*graph, NodeSet::Of({1}), NodeSet::Of({0, 1}),
                  [&emitted](NodeSet s) { emitted.push_back(s); });
  EXPECT_EQ(emitted, (std::vector<NodeSet>{NodeSet::Of({1, 2}),
                                           NodeSet::Of({1, 2, 3})}));
}

}  // namespace
}  // namespace joinopt
