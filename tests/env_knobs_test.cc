#include "util/env.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace joinopt {
namespace {

/// Sets an environment variable for one test scope and restores the
/// previous value (or unsets) on destruction, so tests cannot leak state
/// into each other or into the surrounding ctest invocation.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

constexpr char kVar[] = "JOINOPT_ENV_KNOBS_TEST_VAR";

TEST(EnvDoubleTest, UnsetAndEmptyFallBack) {
  {
    ScopedEnv env(kVar, nullptr);
    const Result<double> parsed = EnvDouble(kVar, 7.5);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, 7.5);
  }
  {
    ScopedEnv env(kVar, "");
    const Result<double> parsed = EnvDouble(kVar, 7.5);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, 7.5);
  }
}

TEST(EnvDoubleTest, AcceptsPlainAndScientific) {
  {
    ScopedEnv env(kVar, "1.25");
    const Result<double> parsed = EnvDouble(kVar, 0.0);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, 1.25);
  }
  {
    ScopedEnv env(kVar, "4e9");
    const Result<double> parsed = EnvDouble(kVar, 0.0);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, 4e9);
  }
  {
    ScopedEnv env(kVar, "0");
    const Result<double> parsed = EnvDouble(kVar, 1.0);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, 0.0);
  }
}

TEST(EnvDoubleTest, RejectsMalformedNamingTheVariable) {
  for (const char* bad : {"abc", "1.5x", "1e", ".", "nan", "inf", "-inf"}) {
    ScopedEnv env(kVar, bad);
    const Result<double> parsed = EnvDouble(kVar, 0.0);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(parsed.status().message().find(kVar), std::string::npos) << bad;
    EXPECT_NE(parsed.status().message().find(bad), std::string::npos) << bad;
  }
}

TEST(EnvDoubleTest, SignChecks) {
  {
    ScopedEnv env(kVar, "-1.0");
    EXPECT_FALSE(EnvDouble(kVar, 0.0).ok());
  }
  {
    // require_positive also rejects zero.
    ScopedEnv env(kVar, "0");
    EXPECT_FALSE(EnvDouble(kVar, 1.0, /*require_positive=*/true).ok());
  }
  {
    ScopedEnv env(kVar, "0.5");
    const Result<double> parsed =
        EnvDouble(kVar, 1.0, /*require_positive=*/true);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, 0.5);
  }
}

TEST(EnvUint64Test, AcceptsDigitsOnly) {
  ScopedEnv env(kVar, "12345678901234");
  const Result<uint64_t> parsed = EnvUint64(kVar, 0);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, 12345678901234ull);
}

TEST(EnvUint64Test, RejectsEverythingElse) {
  // strtoull would silently accept several of these (whitespace, '+',
  // a negative value wrapped around, a "123abc" prefix); the strict
  // parser must not.
  for (const char* bad :
       {"-1", "+5", " 5", "5 ", "12a", "1e9", "0x10",
        "99999999999999999999999"}) {
    ScopedEnv env(kVar, bad);
    const Result<uint64_t> parsed = EnvUint64(kVar, 0);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(parsed.status().message().find(kVar), std::string::npos) << bad;
  }
}

TEST(EnvIntTest, RejectsHugeValues) {
  {
    ScopedEnv env(kVar, "16");
    const Result<int> parsed = EnvInt(kVar, 0);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, 16);
  }
  {
    ScopedEnv env(kVar, "99999999999");
    EXPECT_FALSE(EnvInt(kVar, 0).ok());
  }
}

TEST(ValidateLimitEnvTest, AllValidOrUnsetIsOk) {
  ScopedEnv deadline("JOINOPT_DEADLINE_S", "1.5");
  ScopedEnv budget("JOINOPT_MEMO_BUDGET", "100000");
  ScopedEnv threads("JOINOPT_THREADS", "4");
  ScopedEnv inner("JOINOPT_MAX_INNER", "4e9");
  EXPECT_TRUE(ValidateLimitEnv().ok());
}

TEST(WatchdogSecondsTest, DefaultScalesWithSanitizerBuilds) {
  ScopedEnv env("JOINOPT_WATCHDOG_S", nullptr);
  const Result<double> seconds = WatchdogSeconds();
  ASSERT_TRUE(seconds.ok());
  // 30s in shipping builds; sanitizer instrumentation runs the same soak
  // 4-20x slower, so the default auto-scales rather than turning every
  // slow-but-live TSan run into a watchdog abort.
  EXPECT_EQ(*seconds, BuiltWithSanitizer() ? 120.0 : 30.0);
}

TEST(WatchdogSecondsTest, EnvOverrideIsTakenVerbatim) {
  // An explicit operator choice wins even under sanitizers: no hidden
  // rescaling of a value someone typed.
  ScopedEnv env("JOINOPT_WATCHDOG_S", "7.5");
  const Result<double> seconds = WatchdogSeconds();
  ASSERT_TRUE(seconds.ok());
  EXPECT_EQ(*seconds, 7.5);
}

TEST(WatchdogSecondsTest, RejectsNonPositiveAndMalformed) {
  for (const char* bad : {"0", "-3", "soon"}) {
    ScopedEnv env("JOINOPT_WATCHDOG_S", bad);
    const Result<double> seconds = WatchdogSeconds();
    ASSERT_FALSE(seconds.ok()) << bad;
    EXPECT_EQ(seconds.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(seconds.status().message().find("JOINOPT_WATCHDOG_S"),
              std::string::npos)
        << seconds.status().message();
  }
}

TEST(ValidateLimitEnvTest, EachMalformedKnobIsNamed) {
  const struct {
    const char* name;
    const char* bad;
  } cases[] = {
      {"JOINOPT_DEADLINE_S", "soon"},
      {"JOINOPT_MEMO_BUDGET", "1e9"},
      {"JOINOPT_THREADS", "-2"},
      {"JOINOPT_MAX_INNER", "0"},  // must be strictly positive
      {"JOINOPT_WATCHDOG_S", "-1"},
      {"JOINOPT_CACHE_MB", "lots"},
      {"JOINOPT_QUEUE_DEPTH", "-8"},
  };
  for (const auto& c : cases) {
    ScopedEnv env(c.name, c.bad);
    const Status status = ValidateLimitEnv();
    ASSERT_FALSE(status.ok()) << c.name;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_NE(status.message().find(c.name), std::string::npos)
        << status.message();
  }
}

}  // namespace
}  // namespace joinopt
