#include "exec/executor.h"

#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_cross_products.h"
#include "core/dpccp.h"
#include "core/dpsize_linear.h"
#include "core/greedy.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

TEST(HashJoinTest, JoinsOnSharedColumn) {
  Result<Table> left = Table::WithColumns({"id_l", "k"});
  Result<Table> right = Table::WithColumns({"k", "id_r"});
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  left->AppendRow({0, 7});
  left->AppendRow({1, 8});
  left->AppendRow({2, 7});
  right->AppendRow({7, 100});
  right->AppendRow({9, 200});
  right->AppendRow({7, 300});

  Result<Table> joined = HashJoin(*left, *right);
  ASSERT_TRUE(joined.ok());
  // k=7 matches: left rows {0, 2} x right rows {100, 300} -> 4 rows.
  EXPECT_EQ(joined->row_count(), 4);
  EXPECT_EQ(joined->column_count(), 3);  // id_l, k, id_r (k deduped).
  EXPECT_EQ(joined->ColumnIndex("k"), 1);
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(joined->at(r, joined->ColumnIndex("k")), 7);
  }
}

TEST(HashJoinTest, NoSharedColumnIsCrossProduct) {
  Result<Table> left = Table::WithColumns({"a"});
  Result<Table> right = Table::WithColumns({"b"});
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  left->AppendRow({1});
  left->AppendRow({2});
  right->AppendRow({10});
  right->AppendRow({20});
  right->AppendRow({30});
  Result<Table> joined = HashJoin(*left, *right);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->row_count(), 6);
  EXPECT_EQ(joined->column_count(), 2);
}

TEST(HashJoinTest, MultiColumnKey) {
  Result<Table> left = Table::WithColumns({"k1", "k2", "l"});
  Result<Table> right = Table::WithColumns({"k1", "k2", "r"});
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  left->AppendRow({1, 1, 0});
  left->AppendRow({1, 2, 1});
  right->AppendRow({1, 1, 5});
  right->AppendRow({2, 1, 6});
  Result<Table> joined = HashJoin(*left, *right);
  ASSERT_TRUE(joined.ok());
  // Only (1, 1) matches on both key columns.
  ASSERT_EQ(joined->row_count(), 1);
  EXPECT_EQ(joined->at(0, joined->ColumnIndex("l")), 0);
  EXPECT_EQ(joined->at(0, joined->ColumnIndex("r")), 5);
}

TEST(ExecutorTest, GeneratedDatabaseShape) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 50\nrel b 30\nrel c 10\njoin a b 0.1\njoin b c 0.25\n");
  ASSERT_TRUE(graph.ok());
  Result<Database> database = GenerateDatabase(*graph);
  ASSERT_TRUE(database.ok());
  ASSERT_EQ(database->tables.size(), 3u);
  EXPECT_EQ(database->tables[0].row_count(), 50);
  EXPECT_EQ(database->tables[2].row_count(), 10);
  // Table b carries its id plus both join attributes.
  EXPECT_EQ(database->tables[1].column_count(), 3);
  EXPECT_GE(database->tables[1].ColumnIndex("j_0_1"), 0);
  EXPECT_GE(database->tables[1].ColumnIndex("j_1_2"), 0);
  // Cardinality capping.
  Result<QueryGraph> huge = ParseQuerySpecToGraph("rel big 1e9\n");
  ASSERT_TRUE(huge.ok());
  DatabaseGenOptions options;
  options.max_rows = 100;
  Result<Database> capped = GenerateDatabase(*huge, options);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->tables[0].row_count(), 100);
}

TEST(ExecutorTest, ExecutesAHandCheckableJoin) {
  // a(4 rows) ⋈ b(4 rows) on a domain-2 attribute: every pair with equal
  // attribute values matches.
  Result<QueryGraph> graph =
      ParseQuerySpecToGraph("rel a 4\nrel b 4\njoin a b 0.5\n");
  ASSERT_TRUE(graph.ok());
  Result<Database> database = GenerateDatabase(*graph);
  ASSERT_TRUE(database.ok());

  const CoutCostModel model;
  Result<OptimizationResult> plan = DPccp().Optimize(*graph, model);
  ASSERT_TRUE(plan.ok());
  Result<Table> result = ExecutePlan(plan->plan, *database);
  ASSERT_TRUE(result.ok());

  // Count the expected matches directly.
  const Table& a = database->tables[0];
  const Table& b = database->tables[1];
  const int a_key = a.ColumnIndex("j_0_1");
  const int b_key = b.ColumnIndex("j_0_1");
  int64_t expected = 0;
  for (int64_t i = 0; i < a.row_count(); ++i) {
    for (int64_t j = 0; j < b.row_count(); ++j) {
      expected += a.at(i, a_key) == b.at(j, b_key) ? 1 : 0;
    }
  }
  EXPECT_EQ(result->row_count(), expected);
  EXPECT_EQ(result->column_count(), 3);  // id_0, j_0_1, id_1.
}

TEST(ExecutorTest, AllJoinOrdersProduceTheSameResult) {
  // The fundamental property the optimizer relies on: join order changes
  // cost, never the result. Execute the DPccp, left-deep, and greedy
  // plans on random graphs and compare canonical row sets.
  const CoutCostModel model;
  const DPccp dpccp;
  const DPsizeLinear linear;
  const GreedyOperatorOrdering greedy;
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    WorkloadConfig config;
    config.seed = seed;
    config.min_cardinality = 5;
    config.max_cardinality = 40;
    config.min_selectivity = 0.05;
    config.max_selectivity = 0.5;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(6, 3, config);
    ASSERT_TRUE(graph.ok());
    DatabaseGenOptions gen_options;
    gen_options.seed = seed * 31;
    Result<Database> database = GenerateDatabase(*graph, gen_options);
    ASSERT_TRUE(database.ok());

    std::optional<std::vector<std::vector<int64_t>>> reference;
    for (const JoinOrderer* orderer :
         {static_cast<const JoinOrderer*>(&dpccp),
          static_cast<const JoinOrderer*>(&linear),
          static_cast<const JoinOrderer*>(&greedy)}) {
      Result<OptimizationResult> plan = orderer->Optimize(*graph, model);
      ASSERT_TRUE(plan.ok()) << orderer->name();
      Result<Table> result = ExecutePlan(plan->plan, *database);
      ASSERT_TRUE(result.ok()) << orderer->name();
      auto canonical = result->CanonicalRows();
      if (!reference.has_value()) {
        reference = std::move(canonical);
      } else {
        EXPECT_EQ(canonical, *reference)
            << orderer->name() << " diverged on seed " << seed;
      }
    }
  }
}

TEST(ExecutorTest, CrossProductPlansExecuteToo) {
  // A disconnected query: only the CP optimizer can plan it, and the
  // executor must fall back to a cross product for the island.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 3\nrel b 4\nrel c 5\njoin a b 0.5\n");
  ASSERT_TRUE(graph.ok());
  Result<Database> database = GenerateDatabase(*graph);
  ASSERT_TRUE(database.ok());
  Result<OptimizationResult> plan =
      DPsubCP().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(plan.ok());
  Result<Table> result = ExecutePlan(plan->plan, *database);
  ASSERT_TRUE(result.ok());
  // |a ⋈ b| rows times all 5 of c.
  Result<OptimizationResult> ab_only = DPccp().Optimize(
      *ParseQuerySpecToGraph("rel a 3\nrel b 4\njoin a b 0.5\n"),
      CoutCostModel());
  ASSERT_TRUE(ab_only.ok());
  EXPECT_EQ(result->row_count() % 5, 0);
}

TEST(ExecutorTest, ActualCardinalityTracksEstimateOnAverage) {
  // With domain-based generation the estimate is the expectation of the
  // actual join size; on a few hundred rows they should agree within a
  // loose factor.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 500\nrel b 500\njoin a b 0.01\n");
  ASSERT_TRUE(graph.ok());
  DatabaseGenOptions options;
  options.seed = 7;
  Result<Database> database = GenerateDatabase(*graph, options);
  ASSERT_TRUE(database.ok());
  Result<OptimizationResult> plan = DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(plan.ok());
  Result<Table> result = ExecutePlan(plan->plan, *database);
  ASSERT_TRUE(result.ok());
  const double estimated = plan->cardinality;  // 500*500*0.01 = 2500.
  const double actual = static_cast<double>(result->row_count());
  EXPECT_GT(actual, estimated * 0.6);
  EXPECT_LT(actual, estimated * 1.4);
}

TEST(ExecutorTest, RejectsForeignPlan) {
  // A plan over more relations than the database has.
  Result<QueryGraph> big = MakeChainQuery(4);
  ASSERT_TRUE(big.ok());
  Result<OptimizationResult> plan = DPccp().Optimize(*big, CoutCostModel());
  ASSERT_TRUE(plan.ok());
  Result<QueryGraph> small = MakeChainQuery(2);
  ASSERT_TRUE(small.ok());
  Result<Database> database = GenerateDatabase(*small);
  ASSERT_TRUE(database.ok());
  EXPECT_FALSE(ExecutePlan(plan->plan, *database).ok());
}

}  // namespace
}  // namespace joinopt
