#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/brute_force.h"
#include "core/dpccp.h"
#include "core/dpsize.h"
#include "core/dpsub.h"
#include "cost/cost_model.h"
#include "graph/connectivity.h"
#include "graph/query_graph.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

/// EXHAUSTIVE sweep: every connected labeled graph on n nodes (every
/// subset of the C(n,2) possible edges whose graph is connected) is a
/// query graph; on each one, all three algorithms must agree with each
/// other and with the brute-force oracles. For n = 4 that is 38 graphs,
/// for n = 5 it is 728 — complete coverage of every topology class the
/// paper's four families sample from.

/// Builds the graph for an edge-subset bitmask over the C(n,2) edge
/// slots, with deterministic but varied statistics.
QueryGraph GraphFromEdgeMask(int n, uint32_t edge_mask) {
  QueryGraph graph;
  for (int i = 0; i < n; ++i) {
    JOINOPT_CHECK(graph.AddRelation(100.0 * (i + 1) + 7.0).ok());
  }
  int slot = 0;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if ((edge_mask >> slot) & 1u) {
        // Vary selectivity by slot so different plans genuinely differ.
        const double selectivity = 0.01 + 0.03 * (slot % 7);
        JOINOPT_CHECK(graph.AddEdge(u, v, selectivity).ok());
      }
      ++slot;
    }
  }
  return graph;
}

class ExhaustiveSmallGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveSmallGraphTest, AllConnectedGraphsAgree) {
  const int n = GetParam();
  const int slots = n * (n - 1) / 2;
  const CoutCostModel cout_model;
  const HashJoinCostModel hash_model(3.0, 1.0);
  const DPsize dpsize;
  const DPsub dpsub;
  const DPccp dpccp;

  int connected_graphs = 0;
  for (uint32_t edge_mask = 0; edge_mask < (1u << slots); ++edge_mask) {
    const QueryGraph graph = GraphFromEdgeMask(n, edge_mask);
    if (!IsConnectedGraph(graph)) {
      // The algorithms must consistently refuse it.
      EXPECT_FALSE(dpccp.Optimize(graph, cout_model).ok());
      continue;
    }
    ++connected_graphs;
    const std::string context = "edge_mask=" + std::to_string(edge_mask);

    const uint64_t expected_pairs = BruteForceCcpCountUnordered(graph);
    const uint64_t expected_csg = BruteForceCsgCount(graph);

    for (const CostModel* model :
         {static_cast<const CostModel*>(&cout_model),
          static_cast<const CostModel*>(&hash_model)}) {
      Result<OptimizationResult> size_result = dpsize.Optimize(graph, *model);
      Result<OptimizationResult> sub_result = dpsub.Optimize(graph, *model);
      Result<OptimizationResult> ccp_result = dpccp.Optimize(graph, *model);
      ASSERT_TRUE(size_result.ok()) << context;
      ASSERT_TRUE(sub_result.ok()) << context;
      ASSERT_TRUE(ccp_result.ok()) << context;

      EXPECT_NEAR(size_result->cost / ccp_result->cost, 1.0, 1e-9) << context;
      EXPECT_NEAR(sub_result->cost / ccp_result->cost, 1.0, 1e-9) << context;

      EXPECT_EQ(ccp_result->stats.inner_counter, expected_pairs) << context;
      EXPECT_EQ(size_result->stats.ono_lohman_counter, expected_pairs)
          << context;
      EXPECT_EQ(sub_result->stats.ono_lohman_counter, expected_pairs)
          << context;
      EXPECT_EQ(ccp_result->stats.plans_stored, expected_csg) << context;

      EXPECT_TRUE(ValidatePlan(ccp_result->plan, graph, *model).ok())
          << context;
    }
  }
  // 38 connected labeled graphs on 4 nodes, 728 on 5 (OEIS A001187).
  EXPECT_EQ(connected_graphs, n == 4 ? 38 : 728);
}

INSTANTIATE_TEST_SUITE_P(N4andN5, ExhaustiveSmallGraphTest,
                         ::testing::Values(4, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(ExhaustiveSmallGraphTest, AllSixNodeGraphsLighterChecks) {
  // All 26704 connected labeled graphs on 6 nodes, with the cheaper
  // subset of the checks (Cout only; counter cross-checks against the
  // brute-force pair count).
  const int n = 6;
  const int slots = n * (n - 1) / 2;
  const CoutCostModel model;
  const DPsize dpsize;
  const DPsub dpsub;
  const DPccp dpccp;

  int connected_graphs = 0;
  for (uint32_t edge_mask = 0; edge_mask < (1u << slots); ++edge_mask) {
    const QueryGraph graph = GraphFromEdgeMask(n, edge_mask);
    if (!IsConnectedGraph(graph)) {
      continue;
    }
    ++connected_graphs;
    Result<OptimizationResult> size_result = dpsize.Optimize(graph, model);
    Result<OptimizationResult> sub_result = dpsub.Optimize(graph, model);
    Result<OptimizationResult> ccp_result = dpccp.Optimize(graph, model);
    ASSERT_TRUE(size_result.ok() && sub_result.ok() && ccp_result.ok())
        << edge_mask;
    ASSERT_NEAR(size_result->cost / ccp_result->cost, 1.0, 1e-9) << edge_mask;
    ASSERT_NEAR(sub_result->cost / ccp_result->cost, 1.0, 1e-9) << edge_mask;
    ASSERT_EQ(ccp_result->stats.inner_counter,
              BruteForceCcpCountUnordered(graph))
        << edge_mask;
    ASSERT_EQ(size_result->stats.ono_lohman_counter,
              ccp_result->stats.ono_lohman_counter)
        << edge_mask;
    ASSERT_EQ(sub_result->stats.ono_lohman_counter,
              ccp_result->stats.ono_lohman_counter)
        << edge_mask;
  }
  EXPECT_EQ(connected_graphs, 26704);  // OEIS A001187(6).
}

}  // namespace
}  // namespace joinopt
