/// Tests for the deterministic fault-injection subsystem (src/testing)
/// and the library's promised reaction to each fault point: a typed
/// Status, never a crash — and a context that can be reset and reused
/// after the interrupted run.

#include <cstdlib>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "joinopt.h"
#include "testing/adversarial.h"
#include "testing/fault_injection.h"

namespace joinopt {
namespace {

using testing::FaultConfig;
using testing::FaultInjector;
using testing::FaultPoint;
using testing::ScopedFaultInjection;

TEST(FaultInjectorTest, FiresExactlyOnceAtTheScheduledArrival) {
  FaultConfig config;
  config.at(FaultPoint::kArenaAlloc) = 3;
  ScopedFaultInjection scoped(config);
  FaultInjector& injector = FaultInjector::Instance();
  EXPECT_TRUE(injector.enabled());
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kArenaAlloc));  // 1st
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kArenaAlloc));  // 2nd
  EXPECT_TRUE(injector.ShouldFire(FaultPoint::kArenaAlloc));   // 3rd: fire
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kArenaAlloc));  // Never again.
  EXPECT_EQ(injector.arrivals(FaultPoint::kArenaAlloc), 4u);
  // Other points are not armed and never fire.
  EXPECT_FALSE(injector.ShouldFire(FaultPoint::kDeadline));
}

TEST(FaultInjectorTest, SeedModeMaterializesAStepForEveryPoint) {
  FaultConfig config;
  config.seed = 99;
  config.seed_horizon = 16;
  ScopedFaultInjection scoped(config);
  const FaultConfig& resolved = FaultInjector::Instance().config();
  for (int p = 0; p < testing::kFaultPointCount; ++p) {
    EXPECT_GE(resolved.fire_at[p], 1u) << testing::FaultPointName(
        static_cast<FaultPoint>(p));
    EXPECT_LE(resolved.fire_at[p], 16u);
  }
  // Same seed, same schedule (determinism across Configure calls).
  FaultInjector::Instance().Configure(config);
  for (int p = 0; p < testing::kFaultPointCount; ++p) {
    EXPECT_EQ(FaultInjector::Instance().config().fire_at[p],
              resolved.fire_at[p]);
  }
}

TEST(FaultInjectorTest, ScopedInjectionRestoresThePreviousSchedule) {
  ASSERT_FALSE(FaultInjector::Instance().enabled());
  {
    FaultConfig config;
    config.at(FaultPoint::kTraceSink) = 1;
    ScopedFaultInjection scoped(config);
    EXPECT_TRUE(FaultInjector::Instance().enabled());
  }
  EXPECT_FALSE(FaultInjector::Instance().enabled());
}

TEST(FaultScheduleTest, ScheduleToStringRoundTrips) {
  FaultConfig config;
  config.seed = 42;
  config.seed_horizon = 128;
  config.at(FaultPoint::kArenaAlloc) = 5;
  config.at(FaultPoint::kAdversarialStats) = 9;
  const std::string text = testing::ScheduleToString(config);
  EXPECT_EQ(text, "seed=42,horizon=128,arena_alloc=5,adversarial_stats=9");
  Result<FaultConfig> parsed = testing::ParseFaultSchedule(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, config.seed);
  EXPECT_EQ(parsed->seed_horizon, config.seed_horizon);
  for (int p = 0; p < testing::kFaultPointCount; ++p) {
    EXPECT_EQ(parsed->fire_at[p], config.fire_at[p]) << p;
  }
  EXPECT_EQ(testing::ScheduleToString(*parsed), text);
}

TEST(FaultScheduleTest, DisarmedScheduleIsNone) {
  const FaultConfig disarmed;
  EXPECT_EQ(testing::ScheduleToString(disarmed), "none");
  for (const char* text : {"none", ""}) {
    Result<FaultConfig> parsed = testing::ParseFaultSchedule(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_FALSE(parsed->armed()) << text;
  }
}

TEST(FaultScheduleTest, MalformedScheduleIsTypedInvalidArgument) {
  for (const char* text :
       {"arena_alloc", "arena_alloc=", "arena_alloc=banana", "warp_core=3",
        "seed=1,,horizon=2", "=5", "arena_alloc=-2"}) {
    Result<FaultConfig> parsed = testing::ParseFaultSchedule(text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(FaultScheduleTest, FaultConfigFromEnvReadsAndRejects) {
  ASSERT_EQ(setenv("JOINOPT_FAULT_ALLOC_AT", "7", 1), 0);
  ASSERT_EQ(setenv("JOINOPT_FAULT_DEADLINE_AT", "3", 1), 0);
  Result<FaultConfig> parsed = testing::FaultConfigFromEnv();
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->at(FaultPoint::kArenaAlloc), 7u);
  EXPECT_EQ(parsed->at(FaultPoint::kDeadline), 3u);
  EXPECT_TRUE(parsed->armed());

  // A malformed knob is a typed error naming the variable, not a
  // silently-disarmed injector.
  ASSERT_EQ(setenv("JOINOPT_FAULT_ALLOC_AT", "banana", 1), 0);
  Result<FaultConfig> rejected = testing::FaultConfigFromEnv();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("JOINOPT_FAULT_ALLOC_AT"),
            std::string::npos)
      << rejected.status().ToString();

  ASSERT_EQ(unsetenv("JOINOPT_FAULT_ALLOC_AT"), 0);
  ASSERT_EQ(unsetenv("JOINOPT_FAULT_DEADLINE_AT"), 0);
  Result<FaultConfig> clean = testing::FaultConfigFromEnv();
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->armed());
}

TEST(FaultInjectionTest, AllocationFaultYieldsInternalNotACrash) {
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  FaultConfig config;
  config.at(FaultPoint::kArenaAlloc) = 3;
  ScopedFaultInjection scoped(config);
  for (const char* name : {"DPsize", "DPsub", "DPccp", "DPhyp"}) {
    FaultInjector::Instance().Configure(config);  // Reset arrivals per run.
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(name)->Optimize(*graph, cost_model);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kInternal) << name;
    EXPECT_NE(result.status().message().find("fault injection"),
              std::string::npos)
        << name << ": " << result.status().ToString();
  }
}

TEST(FaultInjectionTest, DeadlineFaultYieldsBudgetExceededAtAnExactTick) {
  Result<QueryGraph> graph = MakeCliqueQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  FaultConfig config;
  config.at(FaultPoint::kDeadline) = 7;
  ScopedFaultInjection scoped(config);
  for (const char* name : {"DPsize", "DPsub", "DPccp", "DPhyp"}) {
    FaultInjector::Instance().Configure(config);
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(name)->Optimize(*graph, cost_model);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded) << name;
    EXPECT_NE(result.status().message().find("deadline fired"),
              std::string::npos)
        << name << ": " << result.status().ToString();
  }
}

TEST(FaultInjectionTest, ThrowingTraceSinkIsContainedAsInternal) {
  Result<QueryGraph> graph = MakeCycleQuery(5);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  testing::ThrowingTraceSink sink;
  OptimizeOptions options;
  options.trace = &sink;
  FaultConfig config;
  config.at(FaultPoint::kTraceSink) = 4;
  ScopedFaultInjection scoped(config);
  for (const char* name : {"DPsize", "DPsub", "DPccp", "DPhyp"}) {
    FaultInjector::Instance().Configure(config);
    Result<OptimizationResult> result = OptimizerRegistry::Get(name)->Optimize(
        *graph, cost_model, options);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kInternal) << name;
    EXPECT_NE(result.status().message().find("trace sink"),
              std::string::npos)
        << name << ": " << result.status().ToString();
  }
}

TEST(FaultInjectionTest, CatalogStatsFaultIsCaughtDownstream) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("a", 100.0).ok());
  ASSERT_TRUE(catalog.AddRelation("b", 200.0).ok());
  ASSERT_TRUE(catalog.AddJoin("a", "b", 0.1).ok());
  ASSERT_TRUE(catalog.Validate().ok());

  FaultConfig config;
  config.at(FaultPoint::kAdversarialStats) = 1;
  ScopedFaultInjection scoped(config);
  // Validation passes — the corruption happens after it, modeling a
  // statistics pipeline that hands the optimizer garbage post-check.
  Result<QueryGraph> graph = catalog.BuildQueryGraph();
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  Result<OptimizationResult> result =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDegenerateStatistics);
}

/// The re-entrancy contract: after an interrupted run — genuine budget
/// trip or injected fault — ResetForRerun() must yield a context that
/// produces exactly the plan a fresh context produces.
TEST(ReentrancyTest, ContextIsReusableAfterBudgetExceeded) {
  Result<QueryGraph> graph = MakeCliqueQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const JoinOrderer* dpccp = OptimizerRegistry::Get("DPccp");

  OptimizeOptions tiny;
  tiny.memo_entry_budget = 3;
  OptimizerContext ctx(*graph, cost_model, tiny);
  Result<OptimizationResult> limited = dpccp->Optimize(ctx);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kBudgetExceeded);

  ctx.ResetForRerun();
  EXPECT_FALSE(ctx.exhausted());
  EXPECT_EQ(ctx.table().populated_count(), 0u);
  Result<OptimizationResult> rerun = dpccp->Optimize(ctx);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();

  Result<OptimizationResult> fresh = dpccp->Optimize(*graph, cost_model);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(rerun->cost, fresh->cost);
  EXPECT_EQ(rerun->cardinality, fresh->cardinality);
  EXPECT_TRUE(ValidatePlan(rerun->plan, *graph, cost_model).ok());
}

TEST(ReentrancyTest, ContextIsReusableAfterInjectedFault) {
  Result<QueryGraph> graph = MakeStarQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const JoinOrderer* dpsub = OptimizerRegistry::Get("DPsub");

  std::unique_ptr<OptimizerContext> ctx;
  {
    FaultConfig config;
    config.at(FaultPoint::kArenaAlloc) = 2;
    ScopedFaultInjection scoped(config);
    // Construct inside the scope: the governor caches the injector's
    // armed state at construction.
    ctx = std::make_unique<OptimizerContext>(*graph, cost_model);
    Result<OptimizationResult> faulted = dpsub->Optimize(*ctx);
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  }

  ctx->ResetForRerun();
  Result<OptimizationResult> rerun = dpsub->Optimize(*ctx);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  Result<OptimizationResult> fresh = dpsub->Optimize(*graph, cost_model);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(rerun->cost, fresh->cost);
}

/// The hypergraph path has its own prologue (graph lifting, statistics
/// validation, a runner-owned memo and governor): a context that routed
/// through the DPhyp adapter must honor the same re-entrancy contract as
/// the graph DPs — no stale lifted-graph or runner state may leak into
/// the rerun.
TEST(ReentrancyTest, HypergraphContextIsReusableAfterInjectedFault) {
  Result<QueryGraph> graph = MakeCycleQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const JoinOrderer* dphyp = OptimizerRegistry::Get("DPhyp");

  std::unique_ptr<OptimizerContext> ctx;
  {
    FaultConfig config;
    config.at(FaultPoint::kArenaAlloc) = 4;
    ScopedFaultInjection scoped(config);
    ctx = std::make_unique<OptimizerContext>(*graph, cost_model);
    Result<OptimizationResult> faulted = dphyp->Optimize(*ctx);
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  }

  ctx->ResetForRerun();
  Result<OptimizationResult> rerun = dphyp->Optimize(*ctx);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->stats.algorithm, "DPhyp");
  EXPECT_FALSE(rerun->stats.best_effort);
  EXPECT_TRUE(ValidatePlan(rerun->plan, *graph, cost_model).ok());

  Result<OptimizationResult> fresh = dphyp->Optimize(*graph, cost_model);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(rerun->cost, fresh->cost);
  EXPECT_EQ(rerun->cardinality, fresh->cardinality);
  // The lifted hypergraph DP must still agree with DPccp on the rerun
  // (to rounding: DPccp estimates on a BFS-relabeled graph, so the
  // product evaluation order differs in the last ULPs).
  Result<OptimizationResult> ccp =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  ASSERT_TRUE(ccp.ok());
  EXPECT_NEAR(rerun->cost, ccp->cost, 1e-9 * ccp->cost);
}

/// Same contract after a salvaged (best-effort) hypergraph run: the
/// degraded result must not poison the context for an exact rerun.
TEST(ReentrancyTest, HypergraphContextIsReusableAfterSalvagedRun) {
  Result<QueryGraph> graph = MakeCliqueQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const JoinOrderer* dphyp = OptimizerRegistry::Get("DPhyp");

  OptimizeOptions tiny;
  tiny.memo_entry_budget = 8;
  tiny.salvage_on_interrupt = true;
  OptimizerContext ctx(*graph, cost_model, tiny);
  Result<OptimizationResult> degraded = dphyp->Optimize(ctx);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->stats.best_effort);
  EXPECT_TRUE(degraded->degradation.best_effort);
  EXPECT_LT(degraded->degradation.memo_coverage, 1.0);
  EXPECT_TRUE(ValidatePlan(degraded->plan, *graph, cost_model).ok());

  ctx.ResetForRerun();
  Result<OptimizationResult> rerun = dphyp->Optimize(ctx);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_FALSE(rerun->stats.best_effort);
  Result<OptimizationResult> fresh = dphyp->Optimize(*graph, cost_model);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(rerun->cost, fresh->cost);
  // The salvaged plan is complete, so its cost bounds the optimum above.
  EXPECT_GE(degraded->cost, fresh->cost);
}

/// ResetForRerun accepts new options, so a budget-tripped run can be
/// retried with a raised budget on the same context.
TEST(ReentrancyTest, ResetForRerunAcceptsNewOptions) {
  Result<QueryGraph> graph = MakeChainQuery(8);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const JoinOrderer* dpsize = OptimizerRegistry::Get("DPsize");

  OptimizeOptions tiny;
  tiny.memo_entry_budget = 2;
  OptimizerContext ctx(*graph, cost_model, tiny);
  ASSERT_FALSE(dpsize->Optimize(ctx).ok());

  OptimizeOptions roomy;
  roomy.memo_entry_budget = 1u << 20;
  ctx.ResetForRerun(roomy);
  EXPECT_EQ(ctx.options().memo_entry_budget, roomy.memo_entry_budget);
  Result<OptimizationResult> rerun = dpsize->Optimize(ctx);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
}

}  // namespace
}  // namespace joinopt
