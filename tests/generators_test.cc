#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/connectivity.h"

namespace joinopt {
namespace {

void ExpectStatsInRange(const QueryGraph& graph, const WorkloadConfig& config) {
  for (int i = 0; i < graph.relation_count(); ++i) {
    EXPECT_GE(graph.cardinality(i), config.min_cardinality * 0.999);
    EXPECT_LE(graph.cardinality(i), config.max_cardinality * 1.001);
  }
  for (const JoinEdge& edge : graph.edges()) {
    EXPECT_GE(edge.selectivity, config.min_selectivity * 0.999);
    EXPECT_LE(edge.selectivity, config.max_selectivity * 1.001);
  }
}

TEST(GeneratorsTest, ChainShape) {
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 6);
  EXPECT_EQ(graph->edge_count(), 5);
  EXPECT_TRUE(IsConnectedGraph(*graph));
  for (int i = 0; i + 1 < 6; ++i) {
    EXPECT_TRUE(graph->HasEdge(i, i + 1));
  }
  EXPECT_FALSE(graph->HasEdge(0, 5));
  ExpectStatsInRange(*graph, WorkloadConfig{});
}

TEST(GeneratorsTest, SingleRelationChain) {
  Result<QueryGraph> graph = MakeChainQuery(1);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 1);
  EXPECT_EQ(graph->edge_count(), 0);
}

TEST(GeneratorsTest, CycleShape) {
  Result<QueryGraph> graph = MakeCycleQuery(5);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 5);
  EXPECT_TRUE(graph->HasEdge(4, 0));
  EXPECT_TRUE(IsConnectedGraph(*graph));
  // Every node has degree exactly 2.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(graph->Neighbors(i).count(), 2) << i;
  }
}

TEST(GeneratorsTest, CycleRejectsTinyN) {
  EXPECT_FALSE(MakeCycleQuery(2).ok());
  EXPECT_FALSE(MakeCycleQuery(1).ok());
}

TEST(GeneratorsTest, StarShape) {
  Result<QueryGraph> graph = MakeStarQuery(6);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 5);
  EXPECT_EQ(graph->Neighbors(0).count(), 5);
  for (int leaf = 1; leaf < 6; ++leaf) {
    EXPECT_EQ(graph->Neighbors(leaf), NodeSet::Of({0}));
  }
}

TEST(GeneratorsTest, CliqueShape) {
  Result<QueryGraph> graph = MakeCliqueQuery(5);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(graph->Neighbors(i).count(), 4);
  }
}

TEST(GeneratorsTest, ShapeDispatch) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 5);
    ASSERT_TRUE(graph.ok()) << QueryShapeName(shape);
    EXPECT_EQ(graph->relation_count(), 5);
    EXPECT_TRUE(IsConnectedGraph(*graph));
  }
}

TEST(GeneratorsTest, ShapeDispatchDegenerateCycle) {
  // Cycle with n=2 silently becomes a chain (Figure 3 convention).
  Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kCycle, 2);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 1);
}

TEST(GeneratorsTest, ShapeNames) {
  EXPECT_EQ(QueryShapeName(QueryShape::kChain), "chain");
  EXPECT_EQ(QueryShapeName(QueryShape::kCycle), "cycle");
  EXPECT_EQ(QueryShapeName(QueryShape::kStar), "star");
  EXPECT_EQ(QueryShapeName(QueryShape::kClique), "clique");
}

TEST(GeneratorsTest, GridShape) {
  Result<QueryGraph> graph = MakeGridQuery(3, 4);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 12);
  // Grid edges: rows*(cols-1) + (rows-1)*cols = 9 + 8 = 17.
  EXPECT_EQ(graph->edge_count(), 17);
  EXPECT_TRUE(IsConnectedGraph(*graph));
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_EQ(graph->Neighbors(0).count(), 2);
  EXPECT_EQ(graph->Neighbors(1).count(), 3);
  EXPECT_EQ(graph->Neighbors(5).count(), 4);
}

TEST(GeneratorsTest, SnowflakeShape) {
  Result<QueryGraph> graph = MakeSnowflakeQuery(3, 2);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 7);  // hub + 3*2.
  EXPECT_EQ(graph->edge_count(), 6);      // A tree.
  EXPECT_TRUE(IsConnectedGraph(*graph));
  EXPECT_EQ(graph->Neighbors(0).count(), 3);  // Hub touches each arm head.
  // Arm heads: 1 and 3 and 5; arm tails: 2, 4, 6 with degree 1.
  EXPECT_TRUE(graph->HasEdge(0, 1));
  EXPECT_TRUE(graph->HasEdge(1, 2));
  EXPECT_FALSE(graph->HasEdge(0, 2));
  EXPECT_EQ(graph->Neighbors(2).count(), 1);
}

TEST(GeneratorsTest, SnowflakeDegeneratesToStar) {
  // arm_length = 1 is exactly a star.
  Result<QueryGraph> graph = MakeSnowflakeQuery(5, 1);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 6);
  EXPECT_EQ(graph->Neighbors(0).count(), 5);
}

TEST(GeneratorsTest, SnowflakeRejectsBadArguments) {
  EXPECT_FALSE(MakeSnowflakeQuery(0, 2).ok());
  EXPECT_FALSE(MakeSnowflakeQuery(2, 0).ok());
  EXPECT_FALSE(MakeSnowflakeQuery(10, 10).ok());  // 101 > 64 relations.
}

TEST(GeneratorsTest, GridRejectsBadDimensions) {
  EXPECT_FALSE(MakeGridQuery(0, 4).ok());
  EXPECT_FALSE(MakeGridQuery(3, -1).ok());
}

TEST(GeneratorsTest, RandomTreeIsATree) {
  for (const uint64_t seed : {1u, 7u, 23u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomTreeQuery(10, config);
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph->edge_count(), 9);
    EXPECT_TRUE(IsConnectedGraph(*graph));
  }
}

TEST(GeneratorsTest, RandomConnectedHasRequestedEdges) {
  WorkloadConfig config;
  config.seed = 3;
  Result<QueryGraph> graph = MakeRandomConnectedQuery(8, 5, config);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 12);  // (n-1) + extra.
  EXPECT_TRUE(IsConnectedGraph(*graph));
}

TEST(GeneratorsTest, RandomConnectedCapsAtCompleteGraph) {
  Result<QueryGraph> graph = MakeRandomConnectedQuery(5, 100);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 10);  // C(5,2).
}

TEST(GeneratorsTest, DeterministicForSameSeed) {
  WorkloadConfig config;
  config.seed = 77;
  Result<QueryGraph> a = MakeRandomConnectedQuery(8, 4, config);
  Result<QueryGraph> b = MakeRandomConnectedQuery(8, 4, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->edge_count(), b->edge_count());
  for (int i = 0; i < a->edge_count(); ++i) {
    EXPECT_EQ(a->edges()[i].left, b->edges()[i].left);
    EXPECT_EQ(a->edges()[i].right, b->edges()[i].right);
    EXPECT_DOUBLE_EQ(a->edges()[i].selectivity, b->edges()[i].selectivity);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a->cardinality(i), b->cardinality(i));
  }
}

TEST(GeneratorsTest, DifferentSeedsChangeStatistics) {
  WorkloadConfig a_config;
  a_config.seed = 1;
  WorkloadConfig b_config;
  b_config.seed = 2;
  Result<QueryGraph> a = MakeChainQuery(6, a_config);
  Result<QueryGraph> b = MakeChainQuery(6, b_config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = false;
  for (int i = 0; i < 6; ++i) {
    any_difference |= a->cardinality(i) != b->cardinality(i);
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorsTest, RejectsOutOfRangeN) {
  EXPECT_FALSE(MakeChainQuery(0).ok());
  EXPECT_FALSE(MakeChainQuery(65).ok());
  EXPECT_FALSE(MakeStarQuery(-2).ok());
}

TEST(GeneratorsTest, ShuffleLabelsPreservesStructure) {
  Result<QueryGraph> graph = MakeStarQuery(7);
  ASSERT_TRUE(graph.ok());
  Random rng(11);
  std::vector<int> old_to_new;
  const QueryGraph shuffled = ShuffleLabels(*graph, rng, &old_to_new);
  ASSERT_EQ(static_cast<int>(old_to_new.size()), 7);
  EXPECT_EQ(shuffled.relation_count(), 7);
  EXPECT_EQ(shuffled.edge_count(), 6);
  for (int u = 0; u < 7; ++u) {
    EXPECT_DOUBLE_EQ(shuffled.cardinality(old_to_new[u]),
                     graph->cardinality(u));
    for (int v = 0; v < 7; ++v) {
      if (u == v) continue;
      EXPECT_EQ(shuffled.HasEdge(old_to_new[u], old_to_new[v]),
                graph->HasEdge(u, v));
    }
  }
}

}  // namespace
}  // namespace joinopt
