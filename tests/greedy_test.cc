#include "core/greedy.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(GreedyTest, ProducesValidPlansOnAllShapes) {
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 9);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> result =
        GreedyOperatorOrdering().Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(result.ok()) << QueryShapeName(shape);
    EXPECT_EQ(result->plan.relations(), graph->AllRelations());
    EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok())
        << QueryShapeName(shape);
  }
}

TEST(GreedyTest, NeverBeatsTheOptimum) {
  const GreedyOperatorOrdering greedy;
  const DPccp exact;
  int suboptimal_cases = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(9, 5, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> greedy_result =
        greedy.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> exact_result =
        exact.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(greedy_result.ok());
    ASSERT_TRUE(exact_result.ok());
    EXPECT_GE(greedy_result->cost, exact_result->cost * (1 - 1e-12))
        << "seed " << seed;
    if (greedy_result->cost > exact_result->cost * (1 + 1e-9)) {
      ++suboptimal_cases;
    }
  }
  // Greedy should actually be suboptimal on at least one of the twelve
  // random instances — otherwise this test exercises nothing.
  EXPECT_GT(suboptimal_cases, 0);
}

TEST(GreedyTest, OptimalOnTwoRelations) {
  Result<QueryGraph> graph =
      ParseQuerySpecToGraph("rel a 10\nrel b 20\njoin a b 0.5\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      GreedyOperatorOrdering().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 100.0);
}

TEST(GreedyTest, SingleRelation) {
  Result<QueryGraph> graph = MakeChainQuery(1);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      GreedyOperatorOrdering().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
}

TEST(GreedyTest, RejectsDisconnected) {
  Result<QueryGraph> graph = QueryGraph::WithRelations(4);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1).ok());
  ASSERT_TRUE(graph->AddEdge(2, 3).ok());
  EXPECT_FALSE(GreedyOperatorOrdering().Optimize(*graph, CoutCostModel()).ok());
}

TEST(GreedyTest, PolynomialWorkOnLargeChain) {
  // Greedy must handle sizes DP cannot: inner counter is O(n^3), far
  // from exponential.
  Result<QueryGraph> graph = MakeChainQuery(40);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      GreedyOperatorOrdering().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.LeafCount(), 40);
  EXPECT_LT(result->stats.inner_counter, 41u * 41u * 41u);
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
}

}  // namespace
}  // namespace joinopt
