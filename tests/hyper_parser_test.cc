#include "dsl/hyper_parser.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "hyper/dphyp.h"

namespace joinopt {
namespace {

TEST(HyperParserTest, SimpleEdgesOnly) {
  Result<Hypergraph> graph = ParseHypergraphSpec(
      "rel a 100\nrel b 50\njoin a b 0.1\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 2);
  EXPECT_EQ(graph->edge_count(), 1);
  EXPECT_TRUE(graph->edges()[0].IsSimple());
  EXPECT_DOUBLE_EQ(graph->edges()[0].selectivity, 0.1);
}

TEST(HyperParserTest, ComplexEdge) {
  Result<Hypergraph> graph = ParseHypergraphSpec(
      "rel a 10\nrel b 20\nrel c 30\nrel d 40\n"
      "join a b 0.5\n"
      "hyperjoin a,b c,d 0.05\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 2);
  const HyperEdge& complex = graph->edges()[1];
  EXPECT_FALSE(complex.IsSimple());
  EXPECT_EQ(complex.left, NodeSet::Of({0, 1}));
  EXPECT_EQ(complex.right, NodeSet::Of({2, 3}));
}

TEST(HyperParserTest, HyperjoinWithSingletonsIsAllowed) {
  Result<Hypergraph> graph = ParseHypergraphSpec(
      "rel a 10\nrel b 20\nhyperjoin a b 0.5\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->edges()[0].IsSimple());
}

TEST(HyperParserTest, Errors) {
  const auto expect_error = [](std::string_view spec,
                               std::string_view needle) {
    const Result<Hypergraph> result = ParseHypergraphSpec(spec);
    ASSERT_FALSE(result.ok()) << spec;
    EXPECT_NE(result.status().message().find(needle), std::string::npos)
        << result.status().ToString();
  };
  expect_error("", "no relations");
  expect_error("rel a 10\nrel a 20\n", "duplicate");
  expect_error("rel a 10\njoin a ghost 0.5\n", "unknown relation");
  expect_error("rel a 10\nrel b 20\njoin a,b a 0.5\n", "single relations");
  expect_error("rel a 10\nrel b 20\nhyperjoin a,b b 0.5\n", "disjoint");
  expect_error("rel a 10\nrel b 20\nhyperjoin a, b 0.5\n", "empty relation");
  expect_error("rel a 10\nfrobnicate a 1\n", "unknown directive");
  expect_error("rel a ten\n", "expected a number");
}

TEST(HyperParserTest, ParsedHypergraphRunsThroughDPhyp) {
  Result<Hypergraph> graph = ParseHypergraphSpec(
      "# R3 joins only once R0 and R1 are assembled\n"
      "rel r0 100\nrel r1 200\nrel r2 300\nrel r3 50\n"
      "join r0 r1 0.1\n"
      "join r1 r2 0.05\n"
      "hyperjoin r0,r1 r3 0.01\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPhyp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.LeafCount(), 4);
  EXPECT_GT(result->cost, 0.0);
}

}  // namespace
}  // namespace joinopt
