#include "hyper/hypergraph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace joinopt {
namespace {

Hypergraph TriangleWithComplexEdge() {
  // Nodes 0..3; simple 0-1, 1-2; complex ({0, 1}, {3}).
  Hypergraph graph;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(graph.AddRelation(100.0).ok());
  }
  EXPECT_TRUE(graph.AddSimpleEdge(0, 1, 0.1).ok());
  EXPECT_TRUE(graph.AddSimpleEdge(1, 2, 0.2).ok());
  EXPECT_TRUE(graph.AddEdge(NodeSet::Of({0, 1}), NodeSet::Of({3}), 0.5).ok());
  return graph;
}

TEST(HypergraphTest, AddRelationAndEdgeValidation) {
  Hypergraph graph;
  EXPECT_FALSE(graph.AddRelation(0.0).ok());
  ASSERT_TRUE(graph.AddRelation(10.0).ok());
  ASSERT_TRUE(graph.AddRelation(20.0).ok());
  EXPECT_FALSE(graph.AddEdge(NodeSet(), NodeSet::Of({1})).ok());
  EXPECT_FALSE(graph.AddEdge(NodeSet::Of({0}), NodeSet::Of({0})).ok());
  EXPECT_FALSE(graph.AddEdge(NodeSet::Of({0}), NodeSet::Of({2})).ok());
  EXPECT_FALSE(graph.AddEdge(NodeSet::Of({0}), NodeSet::Of({1}), 0.0).ok());
  EXPECT_TRUE(graph.AddEdge(NodeSet::Of({0}), NodeSet::Of({1}), 0.5).ok());
  EXPECT_EQ(graph.edge_count(), 1);
  EXPECT_TRUE(graph.edges()[0].IsSimple());
}

TEST(HypergraphTest, FromQueryGraphRoundTrip) {
  Result<QueryGraph> simple = MakeCycleQuery(5);
  ASSERT_TRUE(simple.ok());
  const Hypergraph hyper = Hypergraph::FromQueryGraph(*simple);
  EXPECT_EQ(hyper.relation_count(), 5);
  EXPECT_EQ(hyper.edge_count(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(hyper.cardinality(i), simple->cardinality(i));
    EXPECT_EQ(hyper.name(i), simple->name(i));
  }
  for (const HyperEdge& edge : hyper.edges()) {
    EXPECT_TRUE(edge.IsSimple());
  }
  EXPECT_TRUE(hyper.IsConnected());
}

TEST(HypergraphTest, NeighborhoodSimpleEdgesMatchQueryGraph) {
  Result<QueryGraph> simple = MakeChainQuery(5);
  ASSERT_TRUE(simple.ok());
  const Hypergraph hyper = Hypergraph::FromQueryGraph(*simple);
  for (uint64_t mask = 1; mask < 32; ++mask) {
    const NodeSet s = NodeSet::FromMask(mask);
    EXPECT_EQ(hyper.Neighborhood(s, NodeSet()), simple->Neighborhood(s))
        << s.ToString();
  }
}

TEST(HypergraphTest, NeighborhoodComplexEdgeUsesRepresentative) {
  Hypergraph graph;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(graph.AddRelation(10.0).ok());
  }
  ASSERT_TRUE(graph.AddEdge(NodeSet::Of({0}), NodeSet::Of({2, 3})).ok());
  // From {0}: the far side {2, 3} contributes only min = 2.
  EXPECT_EQ(graph.Neighborhood(NodeSet::Of({0}), NodeSet()), NodeSet::Of({2}));
  // Excluding 2 suppresses the whole far side (no partial membership).
  EXPECT_EQ(graph.Neighborhood(NodeSet::Of({0}), NodeSet::Of({2})), NodeSet());
  // From the far side: requires the WHOLE of {2, 3} to be inside s.
  EXPECT_EQ(graph.Neighborhood(NodeSet::Of({2}), NodeSet()), NodeSet());
  EXPECT_EQ(graph.Neighborhood(NodeSet::Of({2, 3}), NodeSet()),
            NodeSet::Of({0}));
}

TEST(HypergraphTest, AreConnectedRequiresFullContainment) {
  const Hypergraph graph = TriangleWithComplexEdge();
  EXPECT_TRUE(graph.AreConnected(NodeSet::Of({0}), NodeSet::Of({1})));
  EXPECT_TRUE(graph.AreConnected(NodeSet::Of({0, 1}), NodeSet::Of({3})));
  EXPECT_TRUE(graph.AreConnected(NodeSet::Of({0, 1, 2}), NodeSet::Of({3})));
  // {0} alone does not satisfy the complex edge's left side.
  EXPECT_FALSE(graph.AreConnected(NodeSet::Of({0}), NodeSet::Of({3})));
  EXPECT_FALSE(graph.AreConnected(NodeSet::Of({1}), NodeSet::Of({3})));
  EXPECT_FALSE(graph.AreConnected(NodeSet::Of({0}), NodeSet::Of({2})));
}

TEST(HypergraphTest, IsConnectedSetWithComplexEdges) {
  const Hypergraph graph = TriangleWithComplexEdge();
  EXPECT_TRUE(graph.IsConnectedSet(NodeSet::Of({0})));
  EXPECT_TRUE(graph.IsConnectedSet(NodeSet::Of({0, 1})));
  EXPECT_TRUE(graph.IsConnectedSet(NodeSet::Of({0, 1, 2})));
  EXPECT_TRUE(graph.IsConnectedSet(NodeSet::Of({0, 1, 3})));
  EXPECT_TRUE(graph.IsConnectedSet(NodeSet::Of({0, 1, 2, 3})));
  // {0, 3}: the complex edge needs 1 as well.
  EXPECT_FALSE(graph.IsConnectedSet(NodeSet::Of({0, 3})));
  EXPECT_FALSE(graph.IsConnectedSet(NodeSet::Of({1, 3})));
  EXPECT_FALSE(graph.IsConnectedSet(NodeSet::Of({2, 3})));
  EXPECT_FALSE(graph.IsConnectedSet(NodeSet::Of({0, 2})));
  EXPECT_FALSE(graph.IsConnectedSet(NodeSet()));
  EXPECT_TRUE(graph.IsConnected());
}

TEST(HypergraphTest, PathologicallyConnectedButUndecomposable) {
  // Connected via crossing complex edges, yet no csg-cmp split exists.
  Hypergraph graph;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(graph.AddRelation(10.0).ok());
  }
  ASSERT_TRUE(graph.AddEdge(NodeSet::Of({0}), NodeSet::Of({1, 2})).ok());
  ASSERT_TRUE(graph.AddEdge(NodeSet::Of({1}), NodeSet::Of({0, 2})).ok());
  EXPECT_TRUE(graph.IsConnected());
  EXPECT_FALSE(graph.IsConnectedSet(NodeSet::Of({1, 2})));
  EXPECT_FALSE(graph.IsConnectedSet(NodeSet::Of({0, 2})));
  EXPECT_FALSE(graph.IsConnectedSet(NodeSet::Of({0, 1})));
}

TEST(HypergraphTest, SelectivitySemantics) {
  const Hypergraph graph = TriangleWithComplexEdge();
  // Join ({0,1}, {3}): exactly the complex edge becomes evaluable.
  EXPECT_DOUBLE_EQ(
      graph.SelectivityBetween(NodeSet::Of({0, 1}), NodeSet::Of({3})), 0.5);
  // Join ({0}, {1}): only the simple 0-1 edge.
  EXPECT_DOUBLE_EQ(graph.SelectivityBetween(NodeSet::Of({0}), NodeSet::Of({1})),
                   0.1);
  // Join ({0,3}, {1}): completes both 0-1 and the complex edge.
  EXPECT_DOUBLE_EQ(
      graph.SelectivityBetween(NodeSet::Of({0, 3}), NodeSet::Of({1})),
      0.1 * 0.5);
  // Within the full set: all three predicates.
  EXPECT_DOUBLE_EQ(graph.SelectivityWithin(NodeSet::Of({0, 1, 2, 3})),
                   0.1 * 0.2 * 0.5);
}

TEST(HypergraphTest, SelectivityOrderIndependence) {
  // card(S) computed via any split sequence must agree (the DP invariant).
  const Hypergraph graph = TriangleWithComplexEdge();
  const NodeSet full = graph.AllRelations();
  double base = 1.0;
  for (int i = 0; i < graph.relation_count(); ++i) {
    base *= graph.cardinality(i);
  }
  const double reference = base * graph.SelectivityWithin(full);
  for (uint64_t mask = 1; mask < 15; ++mask) {
    const NodeSet s1 = NodeSet::FromMask(mask);
    const NodeSet s2 = full - s1;
    double left = 1.0;
    for (int v : s1) left *= graph.cardinality(v);
    left *= graph.SelectivityWithin(s1);
    double right = 1.0;
    for (int v : s2) right *= graph.cardinality(v);
    right *= graph.SelectivityWithin(s2);
    EXPECT_NEAR(left * right * graph.SelectivityBetween(s1, s2), reference,
                reference * 1e-9)
        << s1.ToString();
  }
}

}  // namespace
}  // namespace joinopt
