#include "core/idp.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "core/greedy.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(IDP1Test, RejectsBadBlockSizeAndInput) {
  Result<QueryGraph> graph = MakeChainQuery(4);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(IDP1(1).Optimize(*graph, CoutCostModel()).ok());
  EXPECT_FALSE(IDP1(4).Optimize(QueryGraph(), CoutCostModel()).ok());
  Result<QueryGraph> disconnected = QueryGraph::WithRelations(3);
  ASSERT_TRUE(disconnected.ok());
  ASSERT_TRUE(disconnected->AddEdge(0, 1).ok());
  EXPECT_FALSE(IDP1(4).Optimize(*disconnected, CoutCostModel()).ok());
}

TEST(IDP1Test, FullBlockSizeMatchesExactDP) {
  // k >= n: one DP round covering everything — must equal DPccp.
  const DPccp exact;
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 8);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> idp_result =
        IDP1(8).Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> exact_result =
        exact.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(idp_result.ok()) << QueryShapeName(shape);
    ASSERT_TRUE(exact_result.ok());
    EXPECT_NEAR(idp_result->cost / exact_result->cost, 1.0, 1e-9)
        << QueryShapeName(shape);
    EXPECT_TRUE(ValidatePlan(idp_result->plan, *graph, CoutCostModel()).ok());
  }
}

TEST(IDP1Test, SmallBlocksProduceValidPlansBoundedByOptimum) {
  const DPccp exact;
  for (const int k : {2, 3, 5}) {
    for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
      WorkloadConfig config;
      config.seed = seed;
      Result<QueryGraph> graph = MakeRandomConnectedQuery(9, 4, config);
      ASSERT_TRUE(graph.ok());
      Result<OptimizationResult> idp_result =
          IDP1(k).Optimize(*graph, CoutCostModel());
      Result<OptimizationResult> exact_result =
          exact.Optimize(*graph, CoutCostModel());
      ASSERT_TRUE(idp_result.ok()) << "k=" << k << " seed=" << seed;
      ASSERT_TRUE(exact_result.ok());
      EXPECT_GE(idp_result->cost, exact_result->cost * (1 - 1e-12));
      EXPECT_TRUE(
          ValidatePlan(idp_result->plan, *graph, CoutCostModel()).ok())
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(IDP1Test, LargerBlocksAreNoWorseOnAverage) {
  // Not guaranteed per-instance, but on a batch the total cost with
  // k = 6 must not exceed the total with k = 2 (k = 2 is the crudest).
  double total_k2 = 0;
  double total_k6 = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(10, 5, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> k2 = IDP1(2).Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> k6 = IDP1(6).Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(k2.ok());
    ASSERT_TRUE(k6.ok());
    total_k2 += k2->cost;
    total_k6 += k6->cost;
  }
  EXPECT_LE(total_k6, total_k2 * (1 + 1e-9));
}

TEST(IDP1Test, ScalesToSizesExactDPCannotReach) {
  // A 48-relation chain with k = 7: rounds of small DPs, cheap inner
  // counter, valid plan.
  Result<QueryGraph> graph = MakeChainQuery(48);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      IDP1(7).Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.LeafCount(), 48);
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
  EXPECT_LT(result->stats.inner_counter, 1'000'000u);
}

TEST(IDP1Test, DenseGraphWithModerateBlock) {
  Result<QueryGraph> graph = MakeCliqueQuery(12);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      IDP1(5).Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
}

}  // namespace
}  // namespace joinopt
