#include "core/ikkbz.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "core/dpsize_linear.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(IKKBZTest, RejectsNonTreeInputs) {
  Result<QueryGraph> cycle = MakeCycleQuery(5);
  ASSERT_TRUE(cycle.ok());
  const Result<OptimizationResult> on_cycle =
      IKKBZ().Optimize(*cycle, CoutCostModel());
  EXPECT_FALSE(on_cycle.ok());
  EXPECT_EQ(on_cycle.status().code(), StatusCode::kInvalidArgument);

  Result<QueryGraph> clique = MakeCliqueQuery(4);
  ASSERT_TRUE(clique.ok());
  EXPECT_FALSE(IKKBZ().Optimize(*clique, CoutCostModel()).ok());

  Result<QueryGraph> disconnected = QueryGraph::WithRelations(3);
  ASSERT_TRUE(disconnected.ok());
  ASSERT_TRUE(disconnected->AddEdge(0, 1).ok());
  EXPECT_FALSE(IKKBZ().Optimize(*disconnected, CoutCostModel()).ok());

  EXPECT_FALSE(IKKBZ().Optimize(QueryGraph(), CoutCostModel()).ok());
}

TEST(IKKBZTest, TrivialSizes) {
  Result<QueryGraph> single = MakeChainQuery(1);
  ASSERT_TRUE(single.ok());
  Result<OptimizationResult> result =
      IKKBZ().Optimize(*single, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);

  Result<QueryGraph> pair =
      ParseQuerySpecToGraph("rel a 10\nrel b 40\njoin a b 0.5\n");
  ASSERT_TRUE(pair.ok());
  result = IKKBZ().Optimize(*pair, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 200.0);
}

TEST(IKKBZTest, MatchesLeftDeepDPOnChainsAndStars) {
  const IKKBZ ikkbz;
  const DPsizeLinear left_deep;
  for (const QueryShape shape : {QueryShape::kChain, QueryShape::kStar}) {
    for (const int n : {3, 6, 10, 13}) {
      for (const uint64_t seed : {1u, 2u, 3u}) {
        WorkloadConfig config;
        config.seed = seed;
        Result<QueryGraph> graph = MakeShapeQuery(shape, n, config);
        ASSERT_TRUE(graph.ok());
        Result<OptimizationResult> fast =
            ikkbz.Optimize(*graph, CoutCostModel());
        Result<OptimizationResult> exact =
            left_deep.Optimize(*graph, CoutCostModel());
        ASSERT_TRUE(fast.ok()) << QueryShapeName(shape) << n;
        ASSERT_TRUE(exact.ok());
        EXPECT_NEAR(fast->cost / exact->cost, 1.0, 1e-9)
            << QueryShapeName(shape) << " n=" << n << " seed=" << seed;
      }
    }
  }
}

TEST(IKKBZTest, MatchesLeftDeepDPOnRandomTrees) {
  // The main differential test: on every tree query, IKKBZ's polynomial
  // ranking must reproduce the exponential left-deep DP's optimum.
  const IKKBZ ikkbz;
  const DPsizeLinear left_deep;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomTreeQuery(11, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> fast = ikkbz.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> exact =
        left_deep.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(fast.ok()) << seed;
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(fast->cost / exact->cost, 1.0, 1e-9) << "seed " << seed;
    EXPECT_TRUE(fast->plan.IsLeftDeep());
    EXPECT_TRUE(ValidatePlan(fast->plan, *graph, CoutCostModel()).ok());
  }
}

TEST(IKKBZTest, NeverBeatsBushyOptimum) {
  const IKKBZ ikkbz;
  const DPccp bushy;
  for (const uint64_t seed : {4u, 5u, 6u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomTreeQuery(10, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> left_deep =
        ikkbz.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> optimal =
        bushy.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(left_deep.ok());
    ASSERT_TRUE(optimal.ok());
    EXPECT_GE(left_deep->cost, optimal->cost * (1 - 1e-12));
  }
}

TEST(IKKBZTest, PolynomialOnSizesExactDPCannotReach) {
  // A 50-leaf star: the left-deep DP would materialize 2^49 subsets;
  // IKKBZ handles it instantly.
  Result<QueryGraph> graph = MakeStarQuery(50);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      IKKBZ().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.LeafCount(), 50);
  EXPECT_TRUE(result->plan.IsLeftDeep());
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
  // Work stays around n² log n, nowhere near exponential.
  EXPECT_LT(result->stats.inner_counter, 100'000u);
}

TEST(IKKBZTest, HandCheckableStar) {
  // Star: hub h(100), leaves a (sel 0.1 -> T=10), b (sel 0.5 -> T=50).
  // Sequences from hub: h,a,b: 1000 + 50000 = 51000;
  //                     h,b,a: 5000 + 50000 = 55000. Leaf-rooted
  // sequences are worse (bigger first intermediate). Optimum: 51000.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel h 100\nrel a 100\nrel b 100\njoin h a 0.1\njoin h b 0.5\n");
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      IKKBZ().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 51000.0);
}

}  // namespace
}  // namespace joinopt
