#include "plan/join_tree.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

/// Builds a plan table describing ((R0 ⋈ R1) ⋈ R2) by hand.
PlanTable HandBuiltTable() {
  PlanTable table(3);
  PlanRef leaves[3];
  for (int i = 0; i < 3; ++i) {
    leaves[i] = table.RegisterLeaf(NodeSet::Singleton(i), 100.0 * (i + 1));
  }
  const PlanRef pair =
      table.Register(NodeSet::Of({0, 1}), 10.0, 50.0, leaves[0], leaves[1],
                     JoinOperator::kHashJoin);
  table.Register(NodeSet::Of({0, 1, 2}), 25.0, 20.0, pair, leaves[2],
                 JoinOperator::kHashJoin);
  return table;
}

TEST(JoinTreeTest, ReconstructsHandBuiltPlan) {
  const PlanTable table = HandBuiltTable();
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->relations(), NodeSet::Of({0, 1, 2}));
  EXPECT_DOUBLE_EQ(tree->cost(), 25.0);
  EXPECT_DOUBLE_EQ(tree->cardinality(), 20.0);
  EXPECT_EQ(tree->LeafCount(), 3);
  EXPECT_EQ(tree->JoinCount(), 2);
  EXPECT_EQ(tree->Height(), 2);
  EXPECT_TRUE(tree->IsLeftDeep());
  EXPECT_EQ(static_cast<int>(tree->nodes().size()), 5);

  // Children precede parents; the root is last.
  const JoinTreeNode& root = tree->root();
  EXPECT_FALSE(root.IsLeaf());
  EXPECT_EQ(tree->nodes()[root.left].relations, NodeSet::Of({0, 1}));
  EXPECT_EQ(tree->nodes()[root.right].relations, NodeSet::Of({2}));
}

TEST(JoinTreeTest, SingleLeafTree) {
  PlanTable table(1);
  table.RegisterLeaf(NodeSet::Singleton(0), 10.0);

  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0}));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->LeafCount(), 1);
  EXPECT_EQ(tree->JoinCount(), 0);
  EXPECT_EQ(tree->Height(), 0);
  EXPECT_TRUE(tree->IsLeftDeep());
  EXPECT_TRUE(tree->root().IsLeaf());
  EXPECT_EQ(tree->root().relation, 0);
  EXPECT_DOUBLE_EQ(tree->cost(), 0.0);
}

TEST(JoinTreeTest, FailsForMissingEntry) {
  const PlanTable table = HandBuiltTable();
  const Result<JoinTree> tree =
      JoinTree::FromPlanTable(table, NodeSet::Of({0, 2}));
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kInternal);
}

TEST(JoinTreeTest, FailsForEmptyRootSet) {
  const PlanTable table = HandBuiltTable();
  EXPECT_FALSE(JoinTree::FromPlanTable(table, NodeSet()).ok());
}

TEST(JoinTreeTest, FailsForCorruptDecomposition) {
  PlanTable table(3);
  PlanRef leaves[3];
  for (int i = 0; i < 3; ++i) {
    leaves[i] = table.RegisterLeaf(NodeSet::Singleton(i), 1.0);
  }
  // Overlapping children: {0,1} and {1,2} do not decompose {0,1,2}.
  const PlanRef p01 = table.Register(NodeSet::Of({0, 1}), 1.0, 1.0, leaves[0],
                                     leaves[1], JoinOperator::kHashJoin);
  const PlanRef p12 = table.Register(NodeSet::Of({1, 2}), 1.0, 1.0, leaves[1],
                                     leaves[2], JoinOperator::kHashJoin);
  table.Register(NodeSet::Of({0, 1, 2}), 1.0, 1.0, p01, p12,
                 JoinOperator::kHashJoin);
  EXPECT_FALSE(JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2})).ok());
}

TEST(JoinTreeTest, BushyTreeIsNotLeftDeep) {
  // ((0 ⋈ 1) ⋈ (2 ⋈ 3)) — a genuinely bushy shape.
  PlanTable table(4);
  PlanRef leaves[4];
  for (int i = 0; i < 4; ++i) {
    leaves[i] = table.RegisterLeaf(NodeSet::Singleton(i), 1.0);
  }
  const PlanRef p01 = table.Register(NodeSet::Of({0, 1}), 1.0, 1.0, leaves[0],
                                     leaves[1], JoinOperator::kHashJoin);
  const PlanRef p23 = table.Register(NodeSet::Of({2, 3}), 1.0, 1.0, leaves[2],
                                     leaves[3], JoinOperator::kHashJoin);
  table.Register(NodeSet::Of({0, 1, 2, 3}), 1.0, 1.0, p01, p23,
                 JoinOperator::kHashJoin);

  Result<JoinTree> tree =
      JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2, 3}));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->IsLeftDeep());
  EXPECT_EQ(tree->Height(), 2);
  EXPECT_EQ(tree->JoinCount(), 3);
}

TEST(JoinTreeTest, RelabelLeavesAppliesPermutation) {
  const PlanTable table = HandBuiltTable();
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  ASSERT_TRUE(tree.ok());
  // Permutation: label 0 -> original 2, 1 -> 0, 2 -> 1.
  tree->RelabelLeaves({2, 0, 1});
  EXPECT_EQ(tree->relations(), NodeSet::Of({0, 1, 2}));
  const JoinTreeNode& root = tree->root();
  EXPECT_EQ(tree->nodes()[root.left].relations, NodeSet::Of({0, 2}));
  EXPECT_EQ(tree->nodes()[root.right].relations, NodeSet::Of({1}));
}

TEST(JoinTreeTest, HeightOfChainPlanOnCoutModel) {
  // Sanity on a real optimizer output: a 6-relation chain plan has
  // between 1 (balanced, impossible here) and 5 (left-deep) levels.
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const DPccp optimizer;
  Result<OptimizationResult> result = optimizer.Optimize(*graph, cost_model);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->plan.Height(), 3);
  EXPECT_LE(result->plan.Height(), 5);
  EXPECT_EQ(result->plan.LeafCount(), 6);
  EXPECT_EQ(result->plan.JoinCount(), 5);
}

}  // namespace
}  // namespace joinopt
