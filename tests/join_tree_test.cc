#include "plan/join_tree.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

/// Builds a plan table describing ((R0 ⋈ R1) ⋈ R2) by hand.
PlanTable HandBuiltTable() {
  PlanTable table(3);
  for (int i = 0; i < 3; ++i) {
    PlanEntry& leaf = table.GetOrCreate(NodeSet::Singleton(i));
    leaf.cost = 0.0;
    leaf.cardinality = 100.0 * (i + 1);
    table.NotePopulated();
  }
  PlanEntry& pair = table.GetOrCreate(NodeSet::Of({0, 1}));
  pair.left = NodeSet::Of({0});
  pair.right = NodeSet::Of({1});
  pair.cost = 10.0;
  pair.cardinality = 50.0;
  table.NotePopulated();
  PlanEntry& all = table.GetOrCreate(NodeSet::Of({0, 1, 2}));
  all.left = NodeSet::Of({0, 1});
  all.right = NodeSet::Of({2});
  all.cost = 25.0;
  all.cardinality = 20.0;
  table.NotePopulated();
  return table;
}

TEST(JoinTreeTest, ReconstructsHandBuiltPlan) {
  const PlanTable table = HandBuiltTable();
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->relations(), NodeSet::Of({0, 1, 2}));
  EXPECT_DOUBLE_EQ(tree->cost(), 25.0);
  EXPECT_DOUBLE_EQ(tree->cardinality(), 20.0);
  EXPECT_EQ(tree->LeafCount(), 3);
  EXPECT_EQ(tree->JoinCount(), 2);
  EXPECT_EQ(tree->Height(), 2);
  EXPECT_TRUE(tree->IsLeftDeep());
  EXPECT_EQ(static_cast<int>(tree->nodes().size()), 5);

  // Children precede parents; the root is last.
  const JoinTreeNode& root = tree->root();
  EXPECT_FALSE(root.IsLeaf());
  EXPECT_EQ(tree->nodes()[root.left].relations, NodeSet::Of({0, 1}));
  EXPECT_EQ(tree->nodes()[root.right].relations, NodeSet::Of({2}));
}

TEST(JoinTreeTest, SingleLeafTree) {
  PlanTable table(1);
  PlanEntry& leaf = table.GetOrCreate(NodeSet::Singleton(0));
  leaf.cost = 0.0;
  leaf.cardinality = 10.0;
  table.NotePopulated();

  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0}));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->LeafCount(), 1);
  EXPECT_EQ(tree->JoinCount(), 0);
  EXPECT_EQ(tree->Height(), 0);
  EXPECT_TRUE(tree->IsLeftDeep());
  EXPECT_TRUE(tree->root().IsLeaf());
  EXPECT_EQ(tree->root().relation, 0);
  EXPECT_DOUBLE_EQ(tree->cost(), 0.0);
}

TEST(JoinTreeTest, FailsForMissingEntry) {
  const PlanTable table = HandBuiltTable();
  const Result<JoinTree> tree =
      JoinTree::FromPlanTable(table, NodeSet::Of({0, 2}));
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kInternal);
}

TEST(JoinTreeTest, FailsForEmptyRootSet) {
  const PlanTable table = HandBuiltTable();
  EXPECT_FALSE(JoinTree::FromPlanTable(table, NodeSet()).ok());
}

TEST(JoinTreeTest, FailsForCorruptDecomposition) {
  PlanTable table(3);
  for (int i = 0; i < 3; ++i) {
    PlanEntry& leaf = table.GetOrCreate(NodeSet::Singleton(i));
    leaf.cost = 0.0;
    leaf.cardinality = 1.0;
    table.NotePopulated();
  }
  // Children overlap the parent incorrectly: {0,1} vs {1,2} for {0,1,2}.
  PlanEntry& bad = table.GetOrCreate(NodeSet::Of({0, 1, 2}));
  bad.left = NodeSet::Of({0, 1});
  bad.right = NodeSet::Of({1, 2});
  bad.cost = 1.0;
  bad.cardinality = 1.0;
  table.NotePopulated();
  EXPECT_FALSE(JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2})).ok());
}

TEST(JoinTreeTest, BushyTreeIsNotLeftDeep) {
  // ((0 ⋈ 1) ⋈ (2 ⋈ 3)) — a genuinely bushy shape.
  PlanTable table(4);
  for (int i = 0; i < 4; ++i) {
    PlanEntry& leaf = table.GetOrCreate(NodeSet::Singleton(i));
    leaf.cost = 0.0;
    leaf.cardinality = 1.0;
    table.NotePopulated();
  }
  const auto add_join = [&table](NodeSet left, NodeSet right) {
    PlanEntry& entry = table.GetOrCreate(left | right);
    entry.left = left;
    entry.right = right;
    entry.cost = 1.0;
    entry.cardinality = 1.0;
    table.NotePopulated();
  };
  add_join(NodeSet::Of({0}), NodeSet::Of({1}));
  add_join(NodeSet::Of({2}), NodeSet::Of({3}));
  add_join(NodeSet::Of({0, 1}), NodeSet::Of({2, 3}));

  Result<JoinTree> tree =
      JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2, 3}));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->IsLeftDeep());
  EXPECT_EQ(tree->Height(), 2);
  EXPECT_EQ(tree->JoinCount(), 3);
}

TEST(JoinTreeTest, RelabelLeavesAppliesPermutation) {
  const PlanTable table = HandBuiltTable();
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  ASSERT_TRUE(tree.ok());
  // Permutation: label 0 -> original 2, 1 -> 0, 2 -> 1.
  tree->RelabelLeaves({2, 0, 1});
  EXPECT_EQ(tree->relations(), NodeSet::Of({0, 1, 2}));
  const JoinTreeNode& root = tree->root();
  EXPECT_EQ(tree->nodes()[root.left].relations, NodeSet::Of({0, 2}));
  EXPECT_EQ(tree->nodes()[root.right].relations, NodeSet::Of({1}));
}

TEST(JoinTreeTest, HeightOfChainPlanOnCoutModel) {
  // Sanity on a real optimizer output: a 6-relation chain plan has
  // between 1 (balanced, impossible here) and 5 (left-deep) levels.
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const DPccp optimizer;
  Result<OptimizationResult> result = optimizer.Optimize(*graph, cost_model);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->plan.Height(), 3);
  EXPECT_LE(result->plan.Height(), 5);
  EXPECT_EQ(result->plan.LeafCount(), 6);
  EXPECT_EQ(result->plan.JoinCount(), 5);
}

}  // namespace
}  // namespace joinopt
