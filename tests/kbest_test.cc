#include "core/kbest.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "bitset/subset_iterator.h"
#include "core/dpccp.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "plan/plan_printer.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

/// Brute-force oracle: the costs of ALL ordered cross-product-free join
/// trees of the query, ascending.
std::vector<double> AllTreeCosts(const QueryGraph& graph,
                                 const CostModel& cost_model) {
  const CardinalityEstimator estimator(graph);
  struct Enumerator {
    const QueryGraph& graph;
    const CardinalityEstimator& estimator;
    const CostModel& cost_model;

    // Returns (cost, cardinality) of every ordered tree for `s`.
    std::vector<std::pair<double, double>> Trees(NodeSet s) {
      if (s.count() == 1) {
        return {{0.0, graph.cardinality(s.Min())}};
      }
      std::vector<std::pair<double, double>> result;
      for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
        const NodeSet s1 = it.Current();
        const NodeSet s2 = s - s1;
        if (!IsConnectedSet(graph, s1) || !IsConnectedSet(graph, s2)) {
          continue;
        }
        if (!graph.AreConnected(s1, s2)) {
          continue;
        }
        for (const auto& [left_cost, left_card] : Trees(s1)) {
          for (const auto& [right_cost, right_card] : Trees(s2)) {
            const double out_card =
                estimator.JoinCardinality(s1, left_card, s2, right_card);
            result.emplace_back(
                left_cost + right_cost +
                    cost_model.JoinCost(left_card, right_card, out_card),
                out_card);
          }
        }
      }
      return result;
    }
  };
  Enumerator enumerator{graph, estimator, cost_model};
  std::vector<double> costs;
  for (const auto& [cost, card] : enumerator.Trees(graph.AllRelations())) {
    costs.push_back(cost);
  }
  std::sort(costs.begin(), costs.end());
  return costs;
}

TEST(KBestTest, RejectsBadInput) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(KBestJoinOrderer(0).Optimize(*graph, CoutCostModel()).ok());
  EXPECT_FALSE(
      KBestJoinOrderer(3).Optimize(QueryGraph(), CoutCostModel()).ok());
}

TEST(KBestTest, KOneMatchesDPccp) {
  const KBestJoinOrderer kbest(1);
  const DPccp exact;
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 7);
    ASSERT_TRUE(graph.ok());
    Result<std::vector<RankedPlan>> plans =
        kbest.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> reference =
        exact.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(plans.ok()) << QueryShapeName(shape);
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(plans->size(), 1u);
    EXPECT_NEAR((*plans)[0].cost / reference->cost, 1.0, 1e-12)
        << QueryShapeName(shape);
  }
}

TEST(KBestTest, RankingMatchesBruteForceOnSmallGraphs) {
  const KBestJoinOrderer kbest(10);
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(5, 2, config);
    ASSERT_TRUE(graph.ok());
    Result<std::vector<RankedPlan>> plans =
        kbest.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(plans.ok());
    const std::vector<double> oracle = AllTreeCosts(*graph, CoutCostModel());
    const size_t expected = std::min<size_t>(10, oracle.size());
    ASSERT_EQ(plans->size(), expected) << seed;
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_NEAR((*plans)[i].cost, oracle[i],
                  1e-9 * std::max(1.0, oracle[i]))
          << "rank " << i << " seed " << seed;
    }
  }
}

TEST(KBestTest, PlansAreSortedDistinctAndValid) {
  Result<QueryGraph> graph = MakeCycleQuery(6);
  ASSERT_TRUE(graph.ok());
  Result<std::vector<RankedPlan>> plans =
      KBestJoinOrderer(8).Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 8u);
  std::set<std::string> expressions;
  for (size_t i = 0; i < plans->size(); ++i) {
    const RankedPlan& ranked = (*plans)[i];
    if (i > 0) {
      EXPECT_GE(ranked.cost, (*plans)[i - 1].cost);
    }
    EXPECT_TRUE(ValidatePlan(ranked.plan, *graph, CoutCostModel()).ok())
        << i;
    expressions.insert(PlanToExpression(ranked.plan, *graph));
  }
  // All eight trees are structurally distinct.
  EXPECT_EQ(expressions.size(), 8u);
}

TEST(KBestTest, ReturnsFewerWhenSpaceIsSmaller) {
  // A 2-relation query has exactly 2 ordered trees.
  Result<QueryGraph> graph = MakeChainQuery(2);
  ASSERT_TRUE(graph.ok());
  Result<std::vector<RankedPlan>> plans =
      KBestJoinOrderer(10).Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 2u);
}

TEST(KBestTest, WorksWithAsymmetricCostModels) {
  Result<QueryGraph> graph = MakeStarQuery(6);
  ASSERT_TRUE(graph.ok());
  const HashJoinCostModel model(4.0, 1.0);
  Result<std::vector<RankedPlan>> plans =
      KBestJoinOrderer(5).Optimize(*graph, model);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 5u);
  const std::vector<double> oracle = AllTreeCosts(*graph, model);
  for (size_t i = 0; i < plans->size(); ++i) {
    EXPECT_NEAR((*plans)[i].cost, oracle[i], 1e-9 * oracle[i]) << i;
    EXPECT_TRUE(ValidatePlan((*plans)[i].plan, *graph, model).ok());
  }
}

TEST(KBestTest, ScrambledNumberingHandled) {
  Result<QueryGraph> chain = MakeChainQuery(6);
  ASSERT_TRUE(chain.ok());
  Random rng(5);
  const QueryGraph shuffled = ShuffleLabels(*chain, rng);
  Result<std::vector<RankedPlan>> plans =
      KBestJoinOrderer(3).Optimize(shuffled, CoutCostModel());
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 3u);
  for (const RankedPlan& ranked : *plans) {
    EXPECT_TRUE(ValidatePlan(ranked.plan, shuffled, CoutCostModel()).ok());
  }
}

}  // namespace
}  // namespace joinopt
