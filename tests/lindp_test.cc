#include "core/lindp.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "core/ikkbz.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(LinDPTest, RejectsEmptyAndDisconnected) {
  EXPECT_FALSE(LinDP().Optimize(QueryGraph(), CoutCostModel()).ok());
  Result<QueryGraph> disconnected = QueryGraph::WithRelations(3);
  ASSERT_TRUE(disconnected.ok());
  ASSERT_TRUE(disconnected->AddEdge(0, 1).ok());
  EXPECT_FALSE(LinDP().Optimize(*disconnected, CoutCostModel()).ok());
}

TEST(LinDPTest, SingleRelationAndPair) {
  Result<QueryGraph> single = MakeChainQuery(1);
  ASSERT_TRUE(single.ok());
  Result<OptimizationResult> result =
      LinDP().Optimize(*single, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
}

TEST(LinDPTest, BoundedBetweenIKKBZAndBushyOptimum) {
  const LinDP lindp;
  const IKKBZ ikkbz;
  const DPccp exact;
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomTreeQuery(11, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> linear = lindp.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> left_deep =
        ikkbz.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> optimal =
        exact.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(linear.ok()) << seed;
    ASSERT_TRUE(left_deep.ok());
    ASSERT_TRUE(optimal.ok());
    // The interval space contains IKKBZ's left-deep tree and is contained
    // in the full bushy space.
    EXPECT_LE(linear->cost, left_deep->cost * (1 + 1e-12)) << seed;
    EXPECT_GE(linear->cost, optimal->cost * (1 - 1e-12)) << seed;
    EXPECT_TRUE(ValidatePlan(linear->plan, *graph, CoutCostModel()).ok());
  }
}

TEST(LinDPTest, BushyIntervalsBeatLeftDeepSomewhere) {
  // LinDP's value over IKKBZ is bushy trees within the linear order.
  // The interval space does not always contain the global bushy optimum
  // (that depends on the linearization keeping the right relations
  // contiguous), but across a corpus of random trees it must strictly
  // beat the left-deep optimum at least once — otherwise the interval DP
  // adds nothing.
  const LinDP lindp;
  const IKKBZ ikkbz;
  int strict_wins = 0;
  int bushy_plans = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomTreeQuery(12, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> linear =
        lindp.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> left_deep =
        ikkbz.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(linear.ok());
    ASSERT_TRUE(left_deep.ok());
    EXPECT_LE(linear->cost, left_deep->cost * (1 + 1e-12)) << seed;
    if (linear->cost < left_deep->cost * (1 - 1e-9)) {
      ++strict_wins;
    }
    if (!linear->plan.IsLeftDeep()) {
      ++bushy_plans;
    }
  }
  EXPECT_GT(strict_wins, 0);
  EXPECT_GT(bushy_plans, 0);
}

TEST(LinDPTest, HandlesCyclicGraphsViaSpanningTree) {
  const LinDP lindp;
  const DPccp exact;
  for (const QueryShape shape : {QueryShape::kCycle, QueryShape::kClique}) {
    Result<QueryGraph> graph = MakeShapeQuery(shape, 9);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> linear =
        lindp.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> optimal =
        exact.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(linear.ok()) << QueryShapeName(shape);
    ASSERT_TRUE(optimal.ok());
    EXPECT_GE(linear->cost, optimal->cost * (1 - 1e-12));
    // No cross products even on cyclic inputs.
    EXPECT_TRUE(ValidatePlan(linear->plan, *graph, CoutCostModel()).ok())
        << QueryShapeName(shape);
  }
}

TEST(LinDPTest, PolynomialWorkOnLargeTrees) {
  // 48 relations: interval DP is O(n^3) ~ 1e5 splits, far from 2^48.
  WorkloadConfig config;
  config.seed = 3;
  Result<QueryGraph> graph = MakeRandomTreeQuery(48, config);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      LinDP().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.LeafCount(), 48);
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, CoutCostModel()).ok());
  EXPECT_LT(result->stats.inner_counter, 2'000'000u);
}

TEST(LinDPTest, ExactOnChainsWithNaturalLinearization) {
  // On a chain the IKKBZ order is a chain traversal whose intervals are
  // exactly the connected subsets reachable... not guaranteed in general,
  // but LinDP must at least match DPccp on small chains where the
  // interval space covers the optimum.
  for (const uint64_t seed : {1u, 2u, 3u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeChainQuery(9, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> linear =
        LinDP().Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> optimal =
        DPccp().Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(linear.ok());
    ASSERT_TRUE(optimal.ok());
    EXPECT_GE(linear->cost, optimal->cost * (1 - 1e-12));
    EXPECT_LE(linear->cost, optimal->cost * 4);  // Near-exact in practice.
  }
}

}  // namespace
}  // namespace joinopt
