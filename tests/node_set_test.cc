#include "bitset/node_set.h"

#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(NodeSetTest, DefaultIsEmpty) {
  const NodeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mask(), 0u);
}

TEST(NodeSetTest, SingletonBasics) {
  const NodeSet s = NodeSet::Singleton(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Min(), 5);
  EXPECT_EQ(s.Max(), 5);
  EXPECT_EQ(s.mask(), uint64_t{1} << 5);
}

TEST(NodeSetTest, SingletonAtBit63) {
  const NodeSet s = NodeSet::Singleton(63);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.Min(), 63);
  EXPECT_EQ(s.Max(), 63);
}

TEST(NodeSetTest, PrefixCoversExactlyFirstN) {
  const NodeSet s = NodeSet::Prefix(4);
  EXPECT_EQ(s.count(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.Contains(i)) << i;
  }
  EXPECT_FALSE(s.Contains(4));
}

TEST(NodeSetTest, PrefixZeroIsEmpty) { EXPECT_TRUE(NodeSet::Prefix(0).empty()); }

TEST(NodeSetTest, PrefixFullWidth) {
  const NodeSet s = NodeSet::Prefix(64);
  EXPECT_EQ(s.count(), 64);
  EXPECT_EQ(s.mask(), ~uint64_t{0});
}

TEST(NodeSetTest, OfBuildsFromList) {
  const NodeSet s = NodeSet::Of({0, 2, 7});
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_EQ(s.Min(), 0);
  EXPECT_EQ(s.Max(), 7);
}

TEST(NodeSetTest, UnionIntersectionDifference) {
  const NodeSet a = NodeSet::Of({0, 1, 2});
  const NodeSet b = NodeSet::Of({2, 3});
  EXPECT_EQ(a | b, NodeSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(a & b, NodeSet::Of({2}));
  EXPECT_EQ(a - b, NodeSet::Of({0, 1}));
  EXPECT_EQ(b - a, NodeSet::Of({3}));
}

TEST(NodeSetTest, CompoundAssignmentOperators) {
  NodeSet s = NodeSet::Of({0, 1});
  s |= NodeSet::Of({2});
  EXPECT_EQ(s, NodeSet::Of({0, 1, 2}));
  s &= NodeSet::Of({1, 2, 3});
  EXPECT_EQ(s, NodeSet::Of({1, 2}));
  s -= NodeSet::Of({1});
  EXPECT_EQ(s, NodeSet::Of({2}));
}

TEST(NodeSetTest, IntersectsAndSubset) {
  const NodeSet a = NodeSet::Of({1, 3});
  const NodeSet b = NodeSet::Of({3, 5});
  const NodeSet c = NodeSet::Of({0, 2});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(NodeSet::Of({1}).IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.ContainsAll(NodeSet::Of({1})));
  EXPECT_FALSE(a.ContainsAll(b));
  // The empty set is a subset of everything and intersects nothing.
  EXPECT_TRUE(NodeSet().IsSubsetOf(c));
  EXPECT_FALSE(NodeSet().Intersects(c));
}

TEST(NodeSetTest, AddRemove) {
  NodeSet s;
  s.Add(3);
  s.Add(9);
  EXPECT_EQ(s, NodeSet::Of({3, 9}));
  s.Remove(3);
  EXPECT_EQ(s, NodeSet::Of({9}));
  s.Remove(9);
  EXPECT_TRUE(s.empty());
  // Removing an absent element is a no-op.
  s.Remove(5);
  EXPECT_TRUE(s.empty());
}

TEST(NodeSetTest, LowestBit) {
  const NodeSet s = NodeSet::Of({4, 6, 9});
  EXPECT_EQ(s.LowestBit(), NodeSet::Singleton(4));
}

TEST(NodeSetTest, MinMax) {
  const NodeSet s = NodeSet::Of({7, 12, 40, 63});
  EXPECT_EQ(s.Min(), 7);
  EXPECT_EQ(s.Max(), 63);
}

TEST(NodeSetTest, IterationAscending) {
  const NodeSet s = NodeSet::Of({1, 5, 17, 42});
  std::vector<int> elements;
  for (int v : s) {
    elements.push_back(v);
  }
  EXPECT_EQ(elements, (std::vector<int>{1, 5, 17, 42}));
}

TEST(NodeSetTest, IterationOfEmptySet) {
  int count = 0;
  for (int v : NodeSet()) {
    (void)v;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(NodeSetTest, OrderingMatchesMaskOrder) {
  EXPECT_LT(NodeSet::Of({0}), NodeSet::Of({1}));
  EXPECT_LT(NodeSet::Of({0, 1}), NodeSet::Of({2}));
  // Every proper subset is numerically smaller than its superset — the
  // property DPsub's ascending enumeration relies on.
  const NodeSet super = NodeSet::Of({1, 3, 6});
  const NodeSet sub = NodeSet::Of({1, 6});
  EXPECT_LT(sub, super);
}

TEST(NodeSetTest, ToStringFormat) {
  EXPECT_EQ(NodeSet().ToString(), "{}");
  EXPECT_EQ(NodeSet::Of({3}).ToString(), "{3}");
  EXPECT_EQ(NodeSet::Of({0, 2, 5}).ToString(), "{0, 2, 5}");
}

TEST(NodeSetTest, StreamOperator) {
  std::ostringstream os;
  os << NodeSet::Of({1, 2});
  EXPECT_EQ(os.str(), "{1, 2}");
}

TEST(NodeSetTest, HashSpreadsClusteredMasks) {
  // Not a strict requirement, just a sanity check that nearby masks do
  // not collide wholesale.
  NodeSetHash hash;
  std::set<size_t> hashes;
  for (uint64_t mask = 1; mask <= 64; ++mask) {
    hashes.insert(hash(NodeSet::FromMask(mask)));
  }
  EXPECT_EQ(hashes.size(), 64u);
}

TEST(NodeSetTest, ConstexprUsable) {
  constexpr NodeSet s = NodeSet::Of({0, 1});
  static_assert(s.count() == 2);
  static_assert(s.Contains(1));
  static_assert(!s.Contains(2));
  EXPECT_EQ(s.count(), 2);
}

}  // namespace
}  // namespace joinopt
