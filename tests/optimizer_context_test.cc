#include "core/optimizer_context.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/registry.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

/// TraceSink that records every callback, for asserting hook contracts.
class CountingSink final : public TraceSink {
 public:
  void OnAlgorithmStart(std::string_view algorithm,
                        const QueryGraph& graph) override {
    started.push_back(std::string(algorithm));
    last_graph_size = graph.relation_count();
  }
  void OnCsgCmpPair(NodeSet, NodeSet) override { ++pairs; }
  void OnPlanInserted(NodeSet, double, double) override { ++inserts; }
  void OnPruned(NodeSet, double, double) override { ++prunes; }
  void OnFallback(std::string_view from, std::string_view to,
                  const Status& why) override {
    fallbacks.push_back(std::string(from) + "->" + std::string(to));
    last_fallback_status = why;
  }

  std::vector<std::string> started;
  std::vector<std::string> fallbacks;
  Status last_fallback_status;
  int last_graph_size = 0;
  uint64_t pairs = 0;
  uint64_t inserts = 0;
  uint64_t prunes = 0;
};

TEST(OptimizeOptionsTest, DefaultsAreUnlimited) {
  const OptimizeOptions options;
  EXPECT_EQ(options.memo_entry_budget, 0u);
  EXPECT_EQ(options.deadline_seconds, 0.0);
  EXPECT_TRUE(options.collect_counters);
  EXPECT_EQ(options.trace, nullptr);
}

TEST(ResourceGovernorTest, UnlimitedNeverTrips) {
  ResourceGovernor governor((OptimizeOptions()));
  for (int i = 0; i < 100'000; ++i) {
    EXPECT_FALSE(governor.Tick());
  }
  EXPECT_TRUE(governor.WithinMemoBudget(1u << 30));
  EXPECT_FALSE(governor.exhausted());
  EXPECT_TRUE(governor.limit_status().ok());
}

TEST(ResourceGovernorTest, MemoBudgetIsSticky) {
  OptimizeOptions options;
  options.memo_entry_budget = 10;
  ResourceGovernor governor(options);
  EXPECT_TRUE(governor.WithinMemoBudget(10));
  EXPECT_FALSE(governor.WithinMemoBudget(11));
  EXPECT_TRUE(governor.exhausted());
  // Sticky: dropping back under the budget does not reset the state.
  EXPECT_FALSE(governor.WithinMemoBudget(1));
  EXPECT_TRUE(governor.Tick());
  EXPECT_EQ(governor.limit_status().code(), StatusCode::kBudgetExceeded);
}

TEST(ResourceGovernorTest, ExpiredDeadlineTripsOnSlowTick) {
  OptimizeOptions options;
  options.deadline_seconds = 1e-12;  // Any clock read exceeds this.
  ResourceGovernor governor(options);
  bool tripped = false;
  // The deadline is only consulted every kTickInterval calls; well before
  // twice that many ticks it must have fired.
  for (int i = 0; i < 20'000 && !tripped; ++i) {
    tripped = governor.Tick();
  }
  EXPECT_TRUE(tripped);
  EXPECT_EQ(governor.limit_status().code(), StatusCode::kBudgetExceeded);
  EXPECT_NE(governor.limit_status().message().find("deadline"),
            std::string::npos);
}

/// The ISSUE's hostile query: a 20-clique has ~2^20 connected subgraphs,
/// so a tiny memo budget must abort every exhaustive enumerator — quickly
/// and deterministically, not after minutes of unbounded work.
TEST(OptimizerBudgetTest, ExhaustiveEnumeratorsRespectMemoBudget) {
  Result<QueryGraph> clique = MakeCliqueQuery(20);
  ASSERT_TRUE(clique.ok());
  const CoutCostModel cost_model;
  OptimizeOptions options;
  options.memo_entry_budget = 64;
  for (const char* name : {"DPccp", "DPsub", "DPsize", "DPhyp", "TDBasic"}) {
    OptimizerContext ctx(*clique, cost_model, options);
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(name)->Optimize(ctx);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded) << name;
    EXPECT_NE(result.status().message().find("memo-entry budget"),
              std::string::npos)
        << name;
  }
}

TEST(OptimizerBudgetTest, ExpiredDeadlineAbortsTheRun) {
  Result<QueryGraph> clique = MakeCliqueQuery(14);
  ASSERT_TRUE(clique.ok());
  const CoutCostModel cost_model;
  OptimizeOptions options;
  options.deadline_seconds = 1e-12;
  for (const char* name : {"DPsub", "DPccp"}) {
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(name)->Optimize(*clique, cost_model, options);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded) << name;
  }
}

TEST(OptimizerBudgetTest, GenerousLimitsChangeNothing) {
  Result<QueryGraph> cycle = MakeCycleQuery(9);
  ASSERT_TRUE(cycle.ok());
  const CoutCostModel cost_model;
  Result<OptimizationResult> unlimited =
      OptimizerRegistry::Get("DPccp")->Optimize(*cycle, cost_model);
  ASSERT_TRUE(unlimited.ok());

  OptimizeOptions options;
  options.memo_entry_budget = 1u << 20;
  options.deadline_seconds = 3600.0;
  Result<OptimizationResult> limited =
      OptimizerRegistry::Get("DPccp")->Optimize(*cycle, cost_model, options);
  ASSERT_TRUE(limited.ok());
  EXPECT_DOUBLE_EQ(limited->cost, unlimited->cost);
  EXPECT_EQ(limited->stats.ono_lohman_counter,
            unlimited->stats.ono_lohman_counter);
  EXPECT_EQ(limited->stats.plans_stored, unlimited->stats.plans_stored);
}

TEST(OptimizerTraceTest, HooksFireWithConsistentCounts) {
  Result<QueryGraph> chain = MakeChainQuery(5);
  ASSERT_TRUE(chain.ok());
  const CoutCostModel cost_model;
  CountingSink sink;
  OptimizeOptions options;
  options.trace = &sink;
  Result<OptimizationResult> result =
      OptimizerRegistry::Get("DPccp")->Optimize(*chain, cost_model, options);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(sink.started.size(), 1u);
  EXPECT_EQ(sink.started[0], "DPccp");
  EXPECT_EQ(sink.last_graph_size, 5);
  // DPccp reports each unordered pair once.
  EXPECT_EQ(sink.pairs, result->stats.ono_lohman_counter);
  // Every costed candidate is either inserted or pruned: both orders of
  // every pair, plus one insert per leaf seed.
  EXPECT_EQ(sink.inserts + sink.prunes,
            result->stats.csg_cmp_pair_counter + 5);
  EXPECT_GE(sink.inserts, result->stats.plans_stored);
  EXPECT_TRUE(sink.fallbacks.empty());
}

TEST(OptimizerTraceTest, CountersCanBeSuppressed) {
  Result<QueryGraph> chain = MakeChainQuery(8);
  ASSERT_TRUE(chain.ok());
  const CoutCostModel cost_model;
  OptimizeOptions options;
  options.collect_counters = false;
  Result<OptimizationResult> result =
      OptimizerRegistry::Get("DPccp")->Optimize(*chain, cost_model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.inner_counter, 0u);
  EXPECT_EQ(result->stats.csg_cmp_pair_counter, 0u);
  EXPECT_EQ(result->stats.ono_lohman_counter, 0u);
  EXPECT_EQ(result->stats.create_join_tree_calls, 0u);
  // The toggle only suppresses reporting; the result itself is unchanged.
  Result<OptimizationResult> reference =
      OptimizerRegistry::Get("DPccp")->Optimize(*chain, cost_model);
  ASSERT_TRUE(reference.ok());
  EXPECT_DOUBLE_EQ(result->cost, reference->cost);
}

TEST(AdaptiveFallbackTest, DegradesGracefullyUnderMemoBudget) {
  Result<QueryGraph> chain = MakeChainQuery(30);
  ASSERT_TRUE(chain.ok());
  const CoutCostModel cost_model;
  CountingSink sink;
  OptimizeOptions options;
  options.memo_entry_budget = 40;  // Below even the 30 leaf seeds + DP.
  options.trace = &sink;
  const AdaptiveOptimizer optimizer;
  Result<OptimizationResult> result =
      optimizer.Optimize(*chain, cost_model, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidatePlan(result->plan, *chain, cost_model).ok());
  // The exact pick and IDP1 both trip the budget; GOO (run with limits
  // stripped) completes and the abandoned rungs are recorded.
  EXPECT_EQ(result->stats.algorithm, "GOO");
  EXPECT_EQ(result->stats.fallback_from, "DPccp,IDP1");
  ASSERT_EQ(sink.fallbacks.size(), 2u);
  EXPECT_EQ(sink.fallbacks[0], "DPccp->IDP1");
  EXPECT_EQ(sink.fallbacks[1], "IDP1->GOO");
  EXPECT_EQ(sink.last_fallback_status.code(), StatusCode::kBudgetExceeded);
}

TEST(AdaptiveFallbackTest, NoFallbackWithinLimits) {
  Result<QueryGraph> cycle = MakeCycleQuery(8);
  ASSERT_TRUE(cycle.ok());
  const CoutCostModel cost_model;
  const AdaptiveOptimizer optimizer;
  Result<OptimizationResult> result =
      optimizer.Optimize(*cycle, cost_model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.fallback_from, "");
  EXPECT_EQ(result->stats.algorithm, "DPccp");
}

TEST(AdaptiveFallbackTest, DisconnectedGraphRetriesCrossProductsUnlimited) {
  QueryGraph graph;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(graph.AddRelation(100.0 + i).ok());
  }
  ASSERT_TRUE(graph.AddEdge(0, 1, 0.1).ok());  // Two components.
  const CoutCostModel cost_model;
  OptimizeOptions options;
  options.memo_entry_budget = 20;
  const AdaptiveOptimizer optimizer;
  Result<OptimizationResult> result =
      optimizer.Optimize(graph, cost_model, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.algorithm, "DPsizeCP");
  EXPECT_EQ(result->stats.fallback_from, "DPsizeCP");
}

TEST(WorkGraphScopeTest, RestoresOriginalGraphOnExit) {
  Result<QueryGraph> chain = MakeChainQuery(4);
  Result<QueryGraph> star = MakeStarQuery(5);
  ASSERT_TRUE(chain.ok() && star.ok());
  const CoutCostModel cost_model;
  OptimizerContext ctx(*chain, cost_model);
  EXPECT_EQ(&ctx.work_graph(), &ctx.graph());
  {
    const WorkGraphScope scope(ctx, *star);
    EXPECT_EQ(&ctx.work_graph(), &*star);
    EXPECT_EQ(&ctx.graph(), &*chain);  // The input graph is unaffected.
  }
  EXPECT_EQ(&ctx.work_graph(), &ctx.graph());
}

}  // namespace
}  // namespace joinopt
