/// Tests for the parallel DP variants (DPsizePar / DPsubPar): the
/// bit-for-bit determinism contract against their serial counterparts
/// across every workload family and several thread counts, the resource
/// limit plumbing (deadline, memo budget, trace clamp), and the
/// deadline-responsiveness regression for serial DPsub (the per-outer-mask
/// tick bug this suite pins fixed).

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/counts.h"
#include "core/optimizer_context.h"
#include "core/outcome.h"
#include "core/registry.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_printer.h"
#include "testing/fault_injection.h"
#include "testing/workloads.h"
#include "util/random.h"

namespace joinopt {
namespace {

const JoinOrderer& Orderer(const char* name) {
  const JoinOrderer* orderer = OptimizerRegistry::Get(name);
  EXPECT_NE(orderer, nullptr) << name;
  return *orderer;
}

/// Runs one optimization through an explicit context and returns the
/// deterministic fingerprint the flight recorder replays against.
OutcomeSignature RunSignature(const char* algorithm, const QueryGraph& graph,
                              const CostModel& cost_model,
                              const OptimizeOptions& options,
                              std::string* expression = nullptr) {
  OptimizerContext ctx(graph, cost_model, options);
  const Result<OptimizationResult> result = Orderer(algorithm).Optimize(ctx);
  if (expression != nullptr) {
    *expression =
        result.ok() ? PlanToExpression(result->plan, graph) : std::string();
  }
  return ExtractOutcomeSignature(result, ctx.stats());
}

/// The determinism sweep of the issue: every workload family, serial vs
/// parallel, at 1, 2, and 8 threads — the OutcomeSignature (status, cost,
/// cardinality, all paper counters, plans_stored) must be bit-for-bit
/// identical, and DPsubPar must reproduce serial DPsub's plan expression
/// exactly (it replays the serial subset sweep per set).
TEST(ParallelDpTest, SerialParallelSignaturesMatchAcrossFamilies) {
  const CoutCostModel cost_model;
  std::set<std::string> families_seen;
  Random rng(20060912);
  int compared = 0;
  for (int draw = 0; draw < 60 && families_seen.size() < 7; ++draw) {
    std::string family;
    Result<QueryGraph> graph = testing::DrawWorkloadGraph(rng, &family);
    ASSERT_TRUE(graph.ok()) << family;
    families_seen.insert(family);

    OptimizeOptions serial_options;
    serial_options.collect_counters = true;
    std::string size_expr;
    std::string sub_expr;
    const OutcomeSignature size_serial = RunSignature(
        "DPsize", *graph, cost_model, serial_options, &size_expr);
    const OutcomeSignature sub_serial =
        RunSignature("DPsub", *graph, cost_model, serial_options, &sub_expr);

    for (const int threads : {1, 2, 8}) {
      OptimizeOptions options = serial_options;
      options.threads = threads;
      const std::string label =
          family + " draw " + std::to_string(draw) + " threads " +
          std::to_string(threads);

      const OutcomeSignature size_par =
          RunSignature("DPsizePar", *graph, cost_model, options);
      EXPECT_EQ(size_par, size_serial)
          << label << "\n" << size_par.DiffAgainst(size_serial);

      std::string sub_par_expr;
      const OutcomeSignature sub_par = RunSignature(
          "DPsubPar", *graph, cost_model, options, &sub_par_expr);
      EXPECT_EQ(sub_par, sub_serial)
          << label << "\n" << sub_par.DiffAgainst(sub_serial);
      EXPECT_EQ(sub_par_expr, sub_expr) << label;
      ++compared;
    }
  }
  // The workload stream draws uniformly over seven families; 60 draws
  // missing one would be a generator regression, not bad luck.
  EXPECT_EQ(families_seen.size(), 7u) << "only saw: " << compared;
}

/// Same contract on the paper's standard shapes at sizes big enough to
/// span several layers of real parallel fan-out.
TEST(ParallelDpTest, SerialParallelSignaturesMatchOnStandardShapes) {
  const CoutCostModel cost_model;
  const struct {
    QueryShape shape;
    int n;
  } cells[] = {
      {QueryShape::kChain, 14},
      {QueryShape::kCycle, 12},
      {QueryShape::kStar, 12},
      {QueryShape::kClique, 10},
  };
  for (const auto& cell : cells) {
    Result<QueryGraph> graph = MakeShapeQuery(cell.shape, cell.n);
    ASSERT_TRUE(graph.ok());
    OptimizeOptions serial_options;
    serial_options.collect_counters = true;
    const OutcomeSignature size_serial =
        RunSignature("DPsize", *graph, cost_model, serial_options);
    const OutcomeSignature sub_serial =
        RunSignature("DPsub", *graph, cost_model, serial_options);
    for (const int threads : {2, 8}) {
      OptimizeOptions options = serial_options;
      options.threads = threads;
      const std::string label = std::string(QueryShapeName(cell.shape)) +
                                std::to_string(cell.n) + " threads " +
                                std::to_string(threads);
      const OutcomeSignature size_par =
          RunSignature("DPsizePar", *graph, cost_model, options);
      EXPECT_EQ(size_par, size_serial)
          << label << "\n" << size_par.DiffAgainst(size_serial);
      const OutcomeSignature sub_par =
          RunSignature("DPsubPar", *graph, cost_model, options);
      EXPECT_EQ(sub_par, sub_serial)
          << label << "\n" << sub_par.DiffAgainst(sub_serial);
    }
  }
}

/// The deadline-overrun regression (the bug of this PR): serial DPsub used
/// to tick the governor once per outer mask, so a whole subset sweep —
/// up to 2^(n-1) pairs on a clique — could run between deadline checks.
/// The fix ticks every 256 loop iterations. With the deterministic
/// kDeadline fault (which fires at an exact governor-tick arrival), a
/// deadline tripping at arrival K therefore stops the run within K * 256
/// loop iterations.
TEST(ParallelDpTest, TrippedDeadlineStopsDPsubWithinStrideBound) {
  const CoutCostModel cost_model;
  Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kClique, 12);
  ASSERT_TRUE(graph.ok());

  constexpr uint64_t kFireAt = 8;
  constexpr uint64_t kTickStride = 256;
  testing::FaultConfig fault;
  fault.at(testing::FaultPoint::kDeadline) = kFireAt;
  testing::ScopedFaultInjection scoped(fault);

  OptimizeOptions options;
  options.deadline_seconds = 3600.0;  // Real clock never trips.
  OptimizerContext ctx(*graph, cost_model, options);
  const Result<OptimizationResult> result = Orderer("DPsub").Optimize(ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBudgetExceeded);
  // inner_counter advances at most once per loop iteration, so the stride
  // bound caps how much work a tripped deadline can overrun by.
  EXPECT_LE(ctx.stats().inner_counter, kFireAt * kTickStride);
}

/// The frequency half of the same regression: across a full clique-14 run
/// the governor must be consulted at least once per 256 inner iterations.
/// The old per-outer-mask tick cannot satisfy this — clique-14 averages
/// ~292 inner iterations per mask (3^14 / 2^14), so per-mask ticking
/// arrives strictly less often than the bound requires.
TEST(ParallelDpTest, DPsubTicksAtLeastOncePerStride) {
  const CoutCostModel cost_model;
  Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kClique, 14);
  ASSERT_TRUE(graph.ok());

  testing::FaultConfig fault;
  fault.at(testing::FaultPoint::kDeadline) = ~uint64_t{0};  // Never fires.
  testing::ScopedFaultInjection scoped(fault);

  OptimizeOptions options;
  options.collect_counters = true;
  OptimizerContext ctx(*graph, cost_model, options);
  const Result<OptimizationResult> result = Orderer("DPsub").Optimize(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.inner_counter,
            PredictedInnerCounterDPsub(QueryShape::kClique, 14));
  const uint64_t ticks =
      testing::FaultInjector::Instance().arrivals(
          testing::FaultPoint::kDeadline);
  EXPECT_GE(ticks, result->stats.inner_counter / 256);
}

/// A trace sink clamps the parallel orderers to one thread (sinks are
/// user code with no thread-safety contract): the traced run must still
/// complete, observe events, and agree with the serial optimum.
TEST(ParallelDpTest, TraceSinkClampsToSingleThreadAndStillAgrees) {
  class CountingSink final : public TraceSink {
   public:
    void OnCsgCmpPair(NodeSet, NodeSet) override { ++pairs_; }
    void OnPlanInserted(NodeSet, double, double) override { ++inserts_; }
    void OnPruned(NodeSet, double, double) override {}
    uint64_t pairs() const { return pairs_; }
    uint64_t inserts() const { return inserts_; }

   private:
    uint64_t pairs_ = 0;
    uint64_t inserts_ = 0;
  };

  const CoutCostModel cost_model;
  Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kCycle, 10);
  ASSERT_TRUE(graph.ok());
  const Result<OptimizationResult> serial =
      Orderer("DPsub").Optimize(*graph, cost_model);
  ASSERT_TRUE(serial.ok());

  for (const char* algorithm : {"DPsizePar", "DPsubPar"}) {
    CountingSink sink;
    OptimizeOptions options;
    options.threads = 8;
    options.trace = &sink;
    const Result<OptimizationResult> traced =
        Orderer(algorithm).Optimize(*graph, cost_model, options);
    ASSERT_TRUE(traced.ok()) << algorithm;
    EXPECT_DOUBLE_EQ(traced->cost, serial->cost) << algorithm;
    EXPECT_GT(sink.pairs(), 0u) << algorithm;
    EXPECT_GT(sink.inserts(), 0u) << algorithm;
  }
}

/// The memo budget is enforced at the coordinator's merge gate: a tiny
/// budget trips with the typed limit status, and salvage mode degrades to
/// a best-effort plan exactly like the serial orderers.
TEST(ParallelDpTest, MemoBudgetTripsAndSalvages) {
  const CoutCostModel cost_model;
  Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kClique, 10);
  ASSERT_TRUE(graph.ok());
  for (const char* algorithm : {"DPsizePar", "DPsubPar"}) {
    OptimizeOptions options;
    options.threads = 4;
    options.memo_entry_budget = 30;
    const Result<OptimizationResult> tripped =
        Orderer(algorithm).Optimize(*graph, cost_model, options);
    ASSERT_FALSE(tripped.ok()) << algorithm;
    EXPECT_EQ(tripped.status().code(), StatusCode::kBudgetExceeded)
        << algorithm;

    options.salvage_on_interrupt = true;
    const Result<OptimizationResult> salvaged =
        Orderer(algorithm).Optimize(*graph, cost_model, options);
    ASSERT_TRUE(salvaged.ok()) << algorithm;
    EXPECT_TRUE(salvaged->stats.best_effort) << algorithm;
  }
}

/// DPsubPar shares serial DPsub's 2^n feasibility bound and refuses
/// oversized inputs with a typed error instead of attempting 2^40 masks.
TEST(ParallelDpTest, DPsubParRefusesHugeN) {
  const CoutCostModel cost_model;
  Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kChain, 40);
  ASSERT_TRUE(graph.ok());
  const Result<OptimizationResult> result =
      Orderer("DPsubPar").Optimize(*graph, cost_model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // DPsizePar has no such bound: chain-40 spans layers fine.
  OptimizeOptions options;
  options.threads = 2;
  const Result<OptimizationResult> size_par =
      Orderer("DPsizePar").Optimize(*graph, cost_model, options);
  EXPECT_TRUE(size_par.ok());
}

}  // namespace
}  // namespace joinopt
