#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "exec/executor.h"
#include "graph/generators.h"
#include "plan/plan_printer.h"

namespace joinopt {
namespace {

TEST(JoinOperatorTest, Names) {
  EXPECT_EQ(JoinOperatorName(JoinOperator::kUnspecified), "Join");
  EXPECT_EQ(JoinOperatorName(JoinOperator::kHashJoin), "HashJoin");
  EXPECT_EQ(JoinOperatorName(JoinOperator::kNestedLoop), "NestedLoopJoin");
  EXPECT_EQ(JoinOperatorName(JoinOperator::kSortMerge), "SortMergeJoin");
}

TEST(JoinOperatorTest, ModelsReportTheirOperator) {
  EXPECT_EQ(CoutCostModel().OperatorFor(1, 1, 1), JoinOperator::kUnspecified);
  EXPECT_EQ(NestedLoopCostModel().OperatorFor(1, 1, 1),
            JoinOperator::kNestedLoop);
  EXPECT_EQ(HashJoinCostModel().OperatorFor(1, 1, 1),
            JoinOperator::kHashJoin);
  EXPECT_EQ(SortMergeCostModel().OperatorFor(1, 1, 1),
            JoinOperator::kSortMerge);
}

TEST(JoinOperatorTest, BestOfPicksArgminOperator) {
  const BestOfCostModel model = BestOfCostModel::Standard();
  // Tiny inputs: NLJ (l*r = 4) beats hash (2*2+2+1 = 7) and sort-merge.
  EXPECT_EQ(model.OperatorFor(2, 2, 1), JoinOperator::kNestedLoop);
  // Large inputs: hash (2l + r + o) beats NLJ (l*r) and sort-merge
  // (n log n both sides).
  EXPECT_EQ(model.OperatorFor(1e6, 1e6, 10), JoinOperator::kHashJoin);
}

TEST(JoinOperatorTest, OptimizerRecordsOperatorsInPlan) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel big1 100000\nrel big2 100000\nrel tiny 2\n"
      "join big1 big2 1e-5\njoin big2 tiny 0.5\n");
  ASSERT_TRUE(graph.ok());
  const BestOfCostModel model = BestOfCostModel::Standard();
  Result<OptimizationResult> result = DPccp().Optimize(*graph, model);
  ASSERT_TRUE(result.ok());
  bool saw_join = false;
  for (const JoinTreeNode& node : result->plan.nodes()) {
    if (!node.IsLeaf()) {
      saw_join = true;
      EXPECT_NE(node.op, JoinOperator::kUnspecified);
    }
  }
  EXPECT_TRUE(saw_join);
  // The explain output names concrete operators; no join line is the
  // bare "Join" of kUnspecified (which would start the line directly).
  const std::string explain = PlanToExplainString(result->plan, *graph);
  EXPECT_FALSE(explain.starts_with("Join  [")) << explain;
  EXPECT_EQ(explain.find("\nJoin  ["), std::string::npos) << explain;
  EXPECT_EQ(explain.find(" Join  ["), std::string::npos) << explain;
}

TEST(JoinOperatorTest, LogicalModelLeavesOperatorUnspecified) {
  Result<QueryGraph> graph = MakeChainQuery(4);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  for (const JoinTreeNode& node : result->plan.nodes()) {
    if (!node.IsLeaf()) {
      EXPECT_EQ(node.op, JoinOperator::kUnspecified);
    }
  }
}

/// The three operator implementations must agree row-for-row.
TEST(JoinOperatorTest, AllOperatorsProduceIdenticalResults) {
  Result<Table> left = Table::WithColumns({"id_l", "k", "k2"});
  Result<Table> right = Table::WithColumns({"k", "k2", "id_r"});
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  Random rng(33);
  for (int64_t i = 0; i < 60; ++i) {
    left->AppendRow({i, static_cast<int64_t>(rng.Uniform(5)),
                     static_cast<int64_t>(rng.Uniform(3))});
  }
  for (int64_t i = 0; i < 80; ++i) {
    right->AppendRow({static_cast<int64_t>(rng.Uniform(5)),
                      static_cast<int64_t>(rng.Uniform(3)), i});
  }
  Result<Table> hash = HashJoin(*left, *right);
  Result<Table> nlj = NestedLoopJoin(*left, *right);
  Result<Table> smj = SortMergeJoin(*left, *right);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(nlj.ok());
  ASSERT_TRUE(smj.ok());
  EXPECT_GT(hash->row_count(), 0);
  EXPECT_EQ(hash->CanonicalRows(), nlj->CanonicalRows());
  EXPECT_EQ(hash->CanonicalRows(), smj->CanonicalRows());
}

TEST(JoinOperatorTest, OperatorsHandleEmptyInputs) {
  Result<Table> left = Table::WithColumns({"k", "a"});
  Result<Table> right = Table::WithColumns({"k", "b"});
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  right->AppendRow({1, 2});
  for (const auto& join : {HashJoin, NestedLoopJoin, SortMergeJoin}) {
    Result<Table> out = join(*left, *right);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->row_count(), 0);
  }
}

TEST(JoinOperatorTest, ExecutorDispatchesOnPlanOperators) {
  // Optimize under BestOf so the plan carries concrete operators, then
  // execute; result must equal executing the same tree with a logical
  // model's plan (hash-join default) — operators are interchangeable.
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 40\nrel b 30\nrel c 20\njoin a b 0.1\njoin b c 0.2\n");
  ASSERT_TRUE(graph.ok());
  Result<Database> database = GenerateDatabase(*graph);
  ASSERT_TRUE(database.ok());

  const BestOfCostModel physical = BestOfCostModel::Standard();
  const CoutCostModel logical;
  Result<OptimizationResult> physical_plan = DPccp().Optimize(*graph, physical);
  Result<OptimizationResult> logical_plan = DPccp().Optimize(*graph, logical);
  ASSERT_TRUE(physical_plan.ok());
  ASSERT_TRUE(logical_plan.ok());

  Result<Table> physical_rows = ExecutePlan(physical_plan->plan, *database);
  Result<Table> logical_rows = ExecutePlan(logical_plan->plan, *database);
  ASSERT_TRUE(physical_rows.ok());
  ASSERT_TRUE(logical_rows.ok());
  EXPECT_EQ(physical_rows->CanonicalRows(), logical_rows->CanonicalRows());
}

}  // namespace
}  // namespace joinopt
