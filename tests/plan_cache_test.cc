/// Tests for the serving layer's fingerprint and sharded plan cache
/// (serve/fingerprint, serve/plan_cache): stat quantization, canonical
/// renumbering invariance, segmented-LRU eviction order under cost-aware
/// admission, generation invalidation, and the typed lookup/insert
/// outcome contract.

#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "joinopt.h"
#include "serve/fingerprint.h"
#include "serve/plan_cache.h"
#include "testing/adversarial.h"

namespace joinopt {
namespace serve {
namespace {

// ---------------------------------------------------------------------
// Quantization.
// ---------------------------------------------------------------------

TEST(QuantizeStatTest, BucketsAtEighthOctaveResolution) {
  // Exact powers of two land on exact buckets and round-trip exactly.
  EXPECT_EQ(QuantizeStat(1.0), 0);
  EXPECT_EQ(QuantizeStat(2.0), 8);
  EXPECT_EQ(QuantizeStat(1024.0), 80);
  EXPECT_DOUBLE_EQ(DequantizeStat(QuantizeStat(1024.0)), 1024.0);
  // Values inside one bucket collapse; values a full bucket apart do not.
  EXPECT_EQ(QuantizeStat(1000.0), QuantizeStat(1004.0));
  EXPECT_NE(QuantizeStat(1000.0), QuantizeStat(1200.0));
}

TEST(QuantizeStatTest, RepresentativeStaysWithinBucketWidth) {
  // The representative of any value's bucket is within half a bucket
  // (2^(1/16) ~ 4.4%) of the value, across many orders of magnitude.
  for (double x : {1e-6, 0.013, 0.4, 1.0, 37.0, 1e4, 3.3e9}) {
    const double representative = DequantizeStat(QuantizeStat(x));
    EXPECT_LE(std::abs(std::log2(representative / x)), 1.0 / 16 + 1e-12)
        << "x=" << x;
  }
}

TEST(QuantizeStatTest, ExtremeValuesClampToFiniteBuckets) {
  const double tiny = DequantizeStat(QuantizeStat(1e-300));
  const double huge = DequantizeStat(QuantizeStat(1e300));
  EXPECT_TRUE(std::isfinite(tiny));
  EXPECT_GT(tiny, 0.0);
  EXPECT_TRUE(std::isfinite(huge));
}

TEST(QuantizeStatTest, NonPositiveAndNonFiniteInputsPinToFiniteBuckets) {
  // log2(0) is -inf and llround of a non-finite is unspecified; the
  // quantizer must be total so an unvalidated stat can never plant a
  // garbage bucket in a canonical fingerprint. Zero, negatives, and NaN
  // take the bottom bucket; +inf the top — all dequantize finite > 0.
  const int64_t bottom = QuantizeStat(0.0);
  EXPECT_EQ(QuantizeStat(-1.0), bottom);
  EXPECT_EQ(QuantizeStat(-std::numeric_limits<double>::infinity()), bottom);
  EXPECT_EQ(QuantizeStat(std::numeric_limits<double>::quiet_NaN()), bottom);
  const int64_t top = QuantizeStat(std::numeric_limits<double>::infinity());
  EXPECT_GT(top, bottom);
  for (const int64_t q : {bottom, top}) {
    const double representative = DequantizeStat(q);
    EXPECT_TRUE(std::isfinite(representative)) << q;
    EXPECT_GT(representative, 0.0) << q;
  }
}

TEST(QuantizeStatTest, DenormalAndSaturatedCardinalitiesStayOrdered) {
  // The smallest denormal and a 1e300-saturated cardinality both land on
  // finite buckets, and ordering survives quantization at the extremes.
  const int64_t denormal =
      QuantizeStat(std::numeric_limits<double>::denorm_min());
  const int64_t saturated = QuantizeStat(1e300);
  EXPECT_LT(denormal, saturated);
  EXPECT_EQ(denormal, QuantizeStat(0.0));  // Clamped into the same bucket.
  EXPECT_TRUE(std::isfinite(DequantizeStat(denormal)));
  EXPECT_TRUE(std::isfinite(DequantizeStat(saturated)));
}

// ---------------------------------------------------------------------
// Canonicalization.
// ---------------------------------------------------------------------

Result<QueryGraph> MakeChain(const std::vector<double>& cards,
                             const std::vector<int>& order) {
  // Builds a chain over `cards` but numbered through `order`, so the
  // same logical query can be presented under different numberings.
  QueryGraph graph;
  std::vector<int> index(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    auto added = graph.AddRelation(cards[static_cast<size_t>(order[i])]);
    if (!added.ok()) {
      return added.status();
    }
    index[static_cast<size_t>(order[i])] = *added;
  }
  for (size_t i = 0; i + 1 < cards.size(); ++i) {
    const Status status = graph.AddEdge(index[i], index[i + 1], 0.1);
    if (!status.ok()) {
      return status;
    }
  }
  return graph;
}

TEST(CanonicalizeQueryTest, RenumberedTwinsShareTheFingerprint) {
  const std::vector<double> cards = {10, 200, 3000, 40000, 500000};
  const std::vector<int> identity = {0, 1, 2, 3, 4};
  const std::vector<int> shuffled = {3, 0, 4, 1, 2};
  auto a = CanonicalizeQuery(*MakeChain(cards, identity), "DPccp", "cout");
  auto b = CanonicalizeQuery(*MakeChain(cards, shuffled), "DPccp", "cout");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->key, b->key);
  EXPECT_EQ(a->hash, b->hash);
  // The canonical graphs are structurally identical too.
  ASSERT_EQ(a->graph.relation_count(), b->graph.relation_count());
  for (int i = 0; i < a->graph.relation_count(); ++i) {
    EXPECT_DOUBLE_EQ(a->graph.cardinality(i), b->graph.cardinality(i));
  }
}

TEST(CanonicalizeQueryTest, NearbyStatsCollapseDistantStatsDoNot) {
  const std::vector<int> identity = {0, 1, 2};
  auto base = CanonicalizeQuery(*MakeChain({1000, 500, 250}, identity),
                                "DPccp", "cout");
  auto near = CanonicalizeQuery(*MakeChain({1004, 502, 251}, identity),
                                "DPccp", "cout");
  auto far = CanonicalizeQuery(*MakeChain({2000, 500, 250}, identity),
                               "DPccp", "cout");
  ASSERT_TRUE(base.ok() && near.ok() && far.ok());
  EXPECT_EQ(base->key, near->key);
  EXPECT_NE(base->key, far->key);
}

TEST(CanonicalizeQueryTest, IntentAndCostModelChangeTheKey) {
  const QueryGraph graph = *MakeChain({10, 20, 30}, {0, 1, 2});
  auto ccp = CanonicalizeQuery(graph, "DPccp", "cout");
  auto sub = CanonicalizeQuery(graph, "DPsub", "cout");
  auto nlj = CanonicalizeQuery(graph, "DPccp", "nlj");
  ASSERT_TRUE(ccp.ok() && sub.ok() && nlj.ok());
  EXPECT_NE(ccp->key, sub->key);
  EXPECT_NE(ccp->key, nlj->key);
}

TEST(CanonicalizeQueryTest, MappingTranslatesCanonicalBackToOriginal) {
  const std::vector<double> cards = {10, 200, 3000};
  const std::vector<int> shuffled = {2, 0, 1};
  const QueryGraph graph = *MakeChain(cards, shuffled);
  auto canonical = CanonicalizeQuery(graph, "DPccp", "cout");
  ASSERT_TRUE(canonical.ok());
  ASSERT_EQ(canonical->canonical_to_original.size(), cards.size());
  for (int c = 0; c < canonical->graph.relation_count(); ++c) {
    const int original = canonical->canonical_to_original[
        static_cast<size_t>(c)];
    EXPECT_DOUBLE_EQ(
        canonical->graph.cardinality(c),
        DequantizeStat(QuantizeStat(graph.cardinality(original))));
  }
}

TEST(CanonicalizeQueryTest, RejectsDegenerateStatisticsLikeTheOptimizer) {
  QueryGraph graph = *MakeChain({10, 20, 30}, {0, 1, 2});
  testing::StatsCorruptor::SetCardinality(
      graph, 1, std::numeric_limits<double>::infinity());
  auto canonical = CanonicalizeQuery(graph, "DPccp", "cout");
  EXPECT_FALSE(canonical.ok());
}

// ---------------------------------------------------------------------
// Plan cache.
// ---------------------------------------------------------------------

/// A minimal exact-result entry for key `k`; `seconds` drives cost-aware
/// admission. The plan is a real single-relation JoinTree (the cache
/// refuses planless entries as uncacheable).
CachedPlan MakeEntry(const std::string& k, uint64_t generation,
                     double seconds = 0.0) {
  static const QueryGraph* graph = [] {
    auto g = new QueryGraph(*QueryGraph::WithRelations(2, 100.0));
    JOINOPT_CHECK(g->AddEdge(0, 1, 0.5).ok());
    return g;
  }();
  static const JoinTree* plan = [] {
    const CoutCostModel cost_model;
    const JoinOrderer* orderer = OptimizerRegistry::Get("DPccp");
    auto result = new Result<OptimizationResult>(
        orderer->Optimize(*graph, cost_model));
    JOINOPT_CHECK(result->ok());
    return &(*result)->plan;
  }();
  CachedPlan entry;
  entry.key = k;
  // Spread the hash like the fingerprint would (shard index uses the top
  // byte, so a cheap std::hash is fine for tests).
  entry.hash = std::hash<std::string>{}(k);
  entry.generation = generation;
  entry.signature.status = StatusCode::kOk;
  entry.recompute_seconds = seconds;
  entry.plan = *plan;
  return entry;
}

PlanCacheConfig SmallConfig(uint64_t capacity, int shards = 1) {
  PlanCacheConfig config;
  config.capacity = capacity;
  config.shards = shards;
  config.protected_share = 0.5;
  config.protect_threshold_seconds = 1.0;  // Nothing auto-protects.
  return config;
}

TEST(PlanCacheTest, InsertThenHitThenTypedMiss) {
  PlanCache cache(SmallConfig(4));
  const CachedPlan entry = MakeEntry("a", cache.generation());
  EXPECT_EQ(cache.Insert(entry), CacheInsert::kInserted);
  auto hit = cache.Lookup(entry.hash, "a");
  EXPECT_EQ(hit.outcome, CacheLookup::kHit);
  ASSERT_TRUE(hit.entry.has_value());
  EXPECT_EQ(hit.entry->key, "a");
  auto miss = cache.Lookup(MakeEntry("b", 1).hash, "b");
  EXPECT_EQ(miss.outcome, CacheLookup::kMiss);
  const PlanCache::Stats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PlanCacheTest, EvictsProbationTailInLruOrder) {
  // Capacity 3, single shard: insert a b c, touch a, insert d.
  // b is the probation LRU tail (a was promoted to protected by its
  // hit), so b must be the victim.
  PlanCache cache(SmallConfig(3));
  for (const char* k : {"a", "b", "c"}) {
    ASSERT_EQ(cache.Insert(MakeEntry(k, 1)), CacheInsert::kInserted);
  }
  EXPECT_EQ(cache.Lookup(MakeEntry("a", 1).hash, "a").outcome,
            CacheLookup::kHit);
  ASSERT_EQ(cache.Insert(MakeEntry("d", 1)), CacheInsert::kInserted);
  EXPECT_EQ(cache.Lookup(MakeEntry("b", 1).hash, "b").outcome,
            CacheLookup::kMiss);
  EXPECT_EQ(cache.Lookup(MakeEntry("a", 1).hash, "a").outcome,
            CacheLookup::kHit);
  EXPECT_EQ(cache.Lookup(MakeEntry("c", 1).hash, "c").outcome,
            CacheLookup::kHit);
  const PlanCache::Stats stats = cache.Snapshot();
  EXPECT_EQ(stats.evicted_probation, 1u);
  // a's first hit and c's verification hit each promoted out of
  // probation; b was evicted before it could be touched.
  EXPECT_EQ(stats.promoted, 2u);
}

TEST(PlanCacheTest, CostAwareAdmissionShieldsExpensivePlans) {
  // protect_threshold 1.0 s: "slow" (2 s) enters protected directly and
  // survives a stream of cheap one-shot entries that would evict it
  // under plain LRU.
  PlanCache cache(SmallConfig(4));
  ASSERT_EQ(cache.Insert(MakeEntry("slow", 1, /*seconds=*/2.0)),
            CacheInsert::kInserted);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(cache.Insert(MakeEntry("cheap" + std::to_string(i), 1)),
              CacheInsert::kInserted);
  }
  EXPECT_EQ(cache.Lookup(MakeEntry("slow", 1).hash, "slow").outcome,
            CacheLookup::kHit);
  EXPECT_GT(cache.Snapshot().evicted_probation, 0u);
}

TEST(PlanCacheTest, GenerationBumpInvalidatesLazilyWithTypedStale) {
  PlanCache cache(SmallConfig(4));
  const CachedPlan entry = MakeEntry("a", cache.generation());
  ASSERT_EQ(cache.Insert(entry), CacheInsert::kInserted);
  cache.BumpGeneration();
  auto stale = cache.Lookup(entry.hash, "a");
  EXPECT_EQ(stale.outcome, CacheLookup::kStale);
  EXPECT_FALSE(stale.entry.has_value());
  // The stale entry was reclaimed on the spot.
  EXPECT_EQ(cache.size(), 0u);
  // A second lookup is a plain miss: the invalidation was consumed.
  EXPECT_EQ(cache.Lookup(entry.hash, "a").outcome, CacheLookup::kMiss);
}

TEST(PlanCacheTest, InsertRacingABumpIsRefusedStale) {
  PlanCache cache(SmallConfig(4));
  // The entry was computed under generation 1; the catalog moved before
  // the insert landed. Caching it would serve outdated statistics.
  const CachedPlan entry = MakeEntry("a", cache.generation());
  cache.BumpGeneration();
  EXPECT_EQ(cache.Insert(entry), CacheInsert::kRejectedStale);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Snapshot().rejected_stale, 1u);
}

TEST(PlanCacheTest, UncacheableOutcomesAreRefusedTyped) {
  PlanCache cache(SmallConfig(4));
  CachedPlan failed = MakeEntry("a", 1);
  failed.signature.status = StatusCode::kBudgetExceeded;
  EXPECT_EQ(cache.Insert(failed), CacheInsert::kRejectedUncacheable);
  CachedPlan best_effort = MakeEntry("b", 1);
  best_effort.signature.best_effort = true;
  EXPECT_EQ(cache.Insert(best_effort), CacheInsert::kRejectedUncacheable);
  CachedPlan planless = MakeEntry("c", 1);
  planless.plan.reset();
  EXPECT_EQ(cache.Insert(planless), CacheInsert::kRejectedUncacheable);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Snapshot().rejected_uncacheable, 3u);
}

TEST(PlanCacheTest, ZeroCapacityRefusesEverythingTyped) {
  PlanCache cache(SmallConfig(0));
  EXPECT_EQ(cache.Insert(MakeEntry("a", 1)),
            CacheInsert::kRejectedCapacity);
  EXPECT_EQ(cache.Lookup(MakeEntry("a", 1).hash, "a").outcome,
            CacheLookup::kMiss);
}

TEST(PlanCacheTest, ReinsertUpdatesInPlace) {
  PlanCache cache(SmallConfig(4));
  ASSERT_EQ(cache.Insert(MakeEntry("a", 1)), CacheInsert::kInserted);
  CachedPlan updated = MakeEntry("a", 1);
  updated.cost = 42.0;
  EXPECT_EQ(cache.Insert(updated), CacheInsert::kUpdated);
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(updated.hash, "a");
  ASSERT_EQ(hit.outcome, CacheLookup::kHit);
  EXPECT_DOUBLE_EQ(hit.entry->cost, 42.0);
}

TEST(PlanCacheTest, ShardCountClampsToPowerOfTwo) {
  for (int requested : {-3, 0, 1, 3, 7, 8, 500}) {
    PlanCacheConfig config = SmallConfig(64, requested);
    PlanCache cache(config);
    // Spread inserts over the hash space; every insert must land.
    for (int i = 0; i < 32; ++i) {
      CachedPlan entry = MakeEntry("k" + std::to_string(i), 1);
      entry.hash = static_cast<uint64_t>(i) << 56;  // One per top-byte.
      ASSERT_EQ(cache.Insert(entry), CacheInsert::kInserted)
          << "shards=" << requested << " i=" << i;
    }
    EXPECT_EQ(cache.size(), 32u) << "shards=" << requested;
  }
}

}  // namespace
}  // namespace serve
}  // namespace joinopt
