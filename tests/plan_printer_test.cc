#include "plan/plan_printer.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

/// A fixed 3-relation plan: ((a ⋈ b) ⋈ c).
struct Fixture {
  QueryGraph graph;
  JoinTree tree;
};

Fixture MakeFixture() {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 100\n"
      "rel b 10\n"
      "rel c 1000\n"
      "join a b 0.1\n"
      "join b c 0.001\n");
  EXPECT_TRUE(graph.ok());

  PlanTable table(3);
  const double cards[] = {100.0, 10.0, 1000.0};
  PlanRef leaves[3];
  for (int i = 0; i < 3; ++i) {
    leaves[i] = table.RegisterLeaf(NodeSet::Singleton(i), cards[i]);
  }
  const PlanRef ab = table.Register(NodeSet::Of({0, 1}), 100.0, 100.0,
                                    leaves[0], leaves[1],
                                    JoinOperator::kHashJoin);
  table.Register(NodeSet::Of({0, 1, 2}), 200.0, 100.0, ab, leaves[2],
                 JoinOperator::kHashJoin);

  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  EXPECT_TRUE(tree.ok());
  return Fixture{std::move(*graph), std::move(*tree)};
}

TEST(PlanPrinterTest, ExpressionUsesNamesAndParens) {
  const Fixture fixture = MakeFixture();
  EXPECT_EQ(PlanToExpression(fixture.tree, fixture.graph), "((a ⋈ b) ⋈ c)");
}

TEST(PlanPrinterTest, SingleLeafExpression) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph("rel solo 42\n");
  ASSERT_TRUE(graph.ok());
  PlanTable table(1);
  table.RegisterLeaf(NodeSet::Singleton(0), 42.0);
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0}));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(PlanToExpression(*tree, *graph), "solo");
}

TEST(PlanPrinterTest, ExplainShowsScansAndJoins) {
  const Fixture fixture = MakeFixture();
  const std::string explain =
      PlanToExplainString(fixture.tree, fixture.graph);
  EXPECT_NE(explain.find("Join  [cost=200 rows=100]"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("Scan a  [rows=100]"), std::string::npos) << explain;
  EXPECT_NE(explain.find("Scan b  [rows=10]"), std::string::npos) << explain;
  EXPECT_NE(explain.find("Scan c  [rows=1000]"), std::string::npos) << explain;
  // Indentation: scans of the inner join are two levels deep.
  EXPECT_NE(explain.find("    Scan a"), std::string::npos) << explain;
  EXPECT_NE(explain.find("  Scan c"), std::string::npos) << explain;
}

TEST(PlanPrinterTest, OptimizerOutputIsPrintable) {
  Result<QueryGraph> graph = MakeStarQuery(5);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const DPccp optimizer;
  Result<OptimizationResult> result = optimizer.Optimize(*graph, cost_model);
  ASSERT_TRUE(result.ok());
  const std::string expr = PlanToExpression(result->plan, *graph);
  // Every relation name appears exactly once.
  for (int i = 0; i < 5; ++i) {
    const std::string name = graph->name(i);
    const size_t first = expr.find(name);
    ASSERT_NE(first, std::string::npos) << expr;
  }
  // 4 joins -> 4 bowties.
  size_t bowties = 0;
  for (size_t pos = expr.find("⋈"); pos != std::string::npos;
       pos = expr.find("⋈", pos + 1)) {
    ++bowties;
  }
  EXPECT_EQ(bowties, 4u);
}

}  // namespace
}  // namespace joinopt
