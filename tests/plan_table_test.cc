#include "plan/plan_table.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "core/registry.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

TEST(PlanRefTest, PacksLayerAndOffset) {
  const PlanRef ref = MakePlanRef(3, 41);
  EXPECT_EQ(PlanRefLayer(ref), 3);
  EXPECT_EQ(PlanRefOffset(ref), 41u);
  // Layer-major order: any layer-3 ref precedes any layer-4 ref.
  EXPECT_LT(MakePlanRef(3, kPlanRefOffsetMask - 1), MakePlanRef(4, 0));
  // The all-ones pattern is reserved for the invalid sentinel.
  EXPECT_NE(MakePlanRef(64, kPlanRefOffsetMask - 1), kInvalidPlanRef);
}

TEST(PlanCandidateBeatsTest, TotalOrderOnCostThenChildren) {
  const PlanRef a = MakePlanRef(1, 0);
  const PlanRef b = MakePlanRef(1, 1);
  // Strictly lower cost wins regardless of refs.
  EXPECT_TRUE(PlanCandidateBeats(1.0, b, b, 2.0, a, a));
  EXPECT_FALSE(PlanCandidateBeats(2.0, a, a, 1.0, b, b));
  // Cost tie: lexicographic (left, right).
  EXPECT_TRUE(PlanCandidateBeats(1.0, a, b, 1.0, b, a));
  EXPECT_TRUE(PlanCandidateBeats(1.0, a, a, 1.0, a, b));
  EXPECT_FALSE(PlanCandidateBeats(1.0, a, b, 1.0, a, a));
  // Identical candidates do not beat each other (strict order).
  EXPECT_FALSE(PlanCandidateBeats(1.0, a, b, 1.0, a, b));
}

TEST(PlanTableTest, BackendSelection) {
  EXPECT_TRUE(PlanTable(10).is_dense());
  EXPECT_TRUE(PlanTable(20).is_dense());
  EXPECT_FALSE(PlanTable(21).is_dense());
  EXPECT_FALSE(PlanTable(10, /*dense_limit=*/5).is_dense());
}

class PlanTableBackendTest : public ::testing::TestWithParam<bool> {
 protected:
  // Dense when GetParam() is true, sparse otherwise.
  PlanTable MakeTable(int n) {
    return PlanTable(n, GetParam() ? 20 : 0);
  }
};

TEST_P(PlanTableBackendTest, FindOnEmptyTableReturnsInvalid) {
  PlanTable table = MakeTable(6);
  EXPECT_EQ(table.Find(NodeSet::Of({0})), kInvalidPlanRef);
  EXPECT_EQ(table.Find(NodeSet::Of({1, 3})), kInvalidPlanRef);
  EXPECT_EQ(table.populated_count(), 0u);
}

TEST_P(PlanTableBackendTest, RegisterThenFindReadsColumns) {
  PlanTable table = MakeTable(6);
  const PlanRef l2 = table.RegisterLeaf(NodeSet::Of({2}), 10.0);
  const PlanRef l4 = table.RegisterLeaf(NodeSet::Of({4}), 20.0);
  const NodeSet s = NodeSet::Of({2, 4});
  const PlanRef ref =
      table.Register(s, 42.0, 7.0, l2, l4, JoinOperator::kHashJoin);
  EXPECT_EQ(table.Find(s), ref);
  EXPECT_EQ(PlanRefLayer(ref), 2);
  EXPECT_EQ(table.set(ref), s);
  EXPECT_DOUBLE_EQ(table.cost(ref), 42.0);
  EXPECT_DOUBLE_EQ(table.cardinality(ref), 7.0);
  EXPECT_EQ(table.left(ref), l2);
  EXPECT_EQ(table.right(ref), l4);
  EXPECT_EQ(table.op(ref), JoinOperator::kHashJoin);
  EXPECT_FALSE(table.IsLeaf(ref));
  EXPECT_TRUE(table.IsLeaf(l2));
  EXPECT_EQ(table.populated_count(), 3u);
}

TEST_P(PlanTableBackendTest, InternCreatesOnceAndMemoizesCardinality) {
  PlanTable table = MakeTable(6);
  const NodeSet s = NodeSet::Of({1, 2});
  int estimates = 0;
  bool created = false;
  const PlanRef ref = table.Intern(s, created, [&] {
    ++estimates;
    return 5.0;
  });
  EXPECT_TRUE(created);
  EXPECT_EQ(estimates, 1);
  EXPECT_DOUBLE_EQ(table.cardinality(ref), 5.0);
  // A fresh entry's cost is unreachable: the caller's first relax lands.
  EXPECT_TRUE(std::isinf(table.cost(ref)));
  EXPECT_EQ(table.populated_count(), 1u);

  // Re-interning returns the same ref without re-estimating.
  const PlanRef again = table.Intern(s, created, [&] {
    ++estimates;
    return 99.0;
  });
  EXPECT_FALSE(created);
  EXPECT_EQ(again, ref);
  EXPECT_EQ(estimates, 1);
  EXPECT_DOUBLE_EQ(table.cardinality(ref), 5.0);
  EXPECT_EQ(table.populated_count(), 1u);
}

TEST_P(PlanTableBackendTest, DistinctSetsAreIndependent) {
  PlanTable table = MakeTable(8);
  std::vector<PlanRef> refs;
  for (int i = 0; i < 8; ++i) {
    refs.push_back(
        table.RegisterLeaf(NodeSet::Singleton(i), static_cast<double>(i)));
  }
  for (int i = 0; i < 8; ++i) {
    const PlanRef ref = table.Find(NodeSet::Singleton(i));
    EXPECT_EQ(ref, refs[i]);
    EXPECT_DOUBLE_EQ(table.cardinality(ref), static_cast<double>(i));
  }
  EXPECT_EQ(table.populated_count(), 8u);
  EXPECT_EQ(table.LayerSize(1), 8u);
}

TEST_P(PlanTableBackendTest, SetPlanReplacesPlanNotCardinality) {
  PlanTable table = MakeTable(4);
  const PlanRef l0 = table.RegisterLeaf(NodeSet::Of({0}), 1.0);
  const PlanRef l1 = table.RegisterLeaf(NodeSet::Of({1}), 2.0);
  const NodeSet s = NodeSet::Of({0, 1});
  const PlanRef ref =
      table.Register(s, 100.0, 3.0, l0, l1, JoinOperator::kHashJoin);
  table.SetPlan(ref, 50.0, l1, l0, JoinOperator::kSortMerge);
  EXPECT_DOUBLE_EQ(table.cost(ref), 50.0);
  EXPECT_EQ(table.left(ref), l1);
  EXPECT_EQ(table.right(ref), l0);
  EXPECT_EQ(table.op(ref), JoinOperator::kSortMerge);
  EXPECT_DOUBLE_EQ(table.cardinality(ref), 3.0);
  EXPECT_EQ(table.populated_count(), 3u);
}

TEST_P(PlanTableBackendTest, ForEachVisitsAllEntriesLayerMajor) {
  PlanTable table = MakeTable(5);
  // Registered out of layer order on purpose.
  table.Register(NodeSet::Of({0, 1, 2, 3, 4}), 3.0, 1.0, kInvalidPlanRef,
                 kInvalidPlanRef, JoinOperator::kUnspecified);
  table.RegisterLeaf(NodeSet::Of({0}), 1.0);
  table.Register(NodeSet::Of({1, 2}), 2.0, 1.0, kInvalidPlanRef,
                 kInvalidPlanRef, JoinOperator::kUnspecified);

  std::vector<int> layers;
  NodeSet all_visited;
  table.ForEach([&](NodeSet s, PlanRef ref) {
    EXPECT_EQ(table.set(ref), s);
    layers.push_back(PlanRefLayer(ref));
    all_visited |= s;
  });
  EXPECT_EQ(layers, (std::vector<int>{1, 2, 5}));
  EXPECT_EQ(all_visited, NodeSet::Of({0, 1, 2, 3, 4}));
}

TEST_P(PlanTableBackendTest, LayerSlabsActAsEqualSizeLists) {
  PlanTable table = MakeTable(6);
  table.RegisterLeaf(NodeSet::Of({3}), 1.0);
  table.RegisterLeaf(NodeSet::Of({1}), 1.0);
  table.RegisterLeaf(NodeSet::Of({5}), 1.0);
  ASSERT_EQ(table.LayerSize(1), 3u);
  EXPECT_EQ(table.LayerSize(2), 0u);
  // Slab order is insertion order: the layered DPs iterate it as the
  // paper's list of plans of equal size.
  EXPECT_EQ(table.set(MakePlanRef(1, 0)), NodeSet::Of({3}));
  EXPECT_EQ(table.set(MakePlanRef(1, 1)), NodeSet::Of({1}));
  EXPECT_EQ(table.set(MakePlanRef(1, 2)), NodeSet::Of({5}));
}

INSTANTIATE_TEST_SUITE_P(DenseAndSparse, PlanTableBackendTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Dense" : "Sparse";
                         });

TEST(AdaptivePlanTableTest, BackendTracksSearchSpaceDensity) {
  // Small n: always dense (the table is tiny either way).
  Result<QueryGraph> small = MakeChainQuery(10);
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(internal::MakeAdaptivePlanTable(*small).is_dense());

  // Large sparse shapes: the 2^n dense fill would dominate the run.
  Result<QueryGraph> chain = MakeChainQuery(20);
  ASSERT_TRUE(chain.ok());
  EXPECT_FALSE(internal::MakeAdaptivePlanTable(*chain).is_dense());
  Result<QueryGraph> cycle = MakeCycleQuery(20);
  ASSERT_TRUE(cycle.ok());
  EXPECT_FALSE(internal::MakeAdaptivePlanTable(*cycle).is_dense());

  // Large dense shapes: #csg is a big fraction of 2^n.
  Result<QueryGraph> star = MakeStarQuery(20);
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(internal::MakeAdaptivePlanTable(*star).is_dense());
  Result<QueryGraph> clique = MakeCliqueQuery(18);
  ASSERT_TRUE(clique.ok());
  EXPECT_TRUE(internal::MakeAdaptivePlanTable(*clique).is_dense());

  // Beyond the addressable dense range: forced sparse.
  Result<QueryGraph> huge = MakeChainQuery(40);
  ASSERT_TRUE(huge.ok());
  EXPECT_FALSE(internal::MakeAdaptivePlanTable(*huge).is_dense());
}

TEST(PlanTableTest, DenseBackendCountsPreallocationAgainstBudget) {
  // 2^16 dense slots exceed a 100-entry budget: the table must fall back
  // to sparse so the memo budget is enforced identically on both
  // backends.
  EXPECT_FALSE(PlanTable(16, 20, /*memo_entry_budget=*/100).is_dense());
  EXPECT_TRUE(PlanTable(16, 20, uint64_t{1} << 16).is_dense());
  // Budget exactly 2^n still fits.
  EXPECT_TRUE(PlanTable(6, 20, 64).is_dense());
  EXPECT_FALSE(PlanTable(6, 20, 63).is_dense());
  // Zero budget means unlimited, as everywhere else.
  EXPECT_TRUE(PlanTable(16, 20, 0).is_dense());
}

TEST(PlanTableTest, SparseShardCountAdaptsToLayerPopulation) {
  PlanTable table(64, /*dense_limit=*/0);
  ASSERT_FALSE(table.is_dense());
  // Tiny layer below (64 leaves): layer 2's index stays unsharded.
  for (int i = 0; i < 64; ++i) {
    table.RegisterLeaf(NodeSet::Singleton(i), 1.0);
  }
  table.Register(NodeSet::Of({0, 1}), 1.0, 1.0, kInvalidPlanRef,
                 kInvalidPlanRef, JoinOperator::kUnspecified);
  EXPECT_EQ(table.sparse_shard_count(2), 1);

  // Grow layer 3 past the one-shard threshold (2 * 4096 entries), then
  // the FIRST layer-4 insert sizes its index from that population.
  uint64_t registered = 0;
  for (int i = 0; i < 64 && registered < 8192; ++i) {
    for (int j = i + 1; j < 64 && registered < 8192; ++j) {
      for (int k = j + 1; k < 64 && registered < 8192; ++k) {
        table.Register(NodeSet::Of({i, j, k}), 1.0, 1.0, kInvalidPlanRef,
                       kInvalidPlanRef, JoinOperator::kUnspecified);
        ++registered;
      }
    }
  }
  ASSERT_EQ(table.LayerSize(3), 8192u);
  table.Register(NodeSet::Of({0, 1, 2, 3}), 1.0, 1.0, kInvalidPlanRef,
                 kInvalidPlanRef, JoinOperator::kUnspecified);
  EXPECT_EQ(table.sparse_shard_count(4), 2);
  // An unsized layer reports 1 until its first insert.
  EXPECT_EQ(table.sparse_shard_count(5), 1);
}

TEST(PlanTableTest, ShardedSparseBackendFindsAndIterates) {
  // Enough size-2 sets to exercise multiple shards' worth of hashing on
  // a sparse table; every set must round-trip through Find.
  PlanTable table(24, /*dense_limit=*/0);
  ASSERT_FALSE(table.is_dense());
  for (int i = 0; i < 24; ++i) {
    for (int j = i + 1; j < 24; ++j) {
      table.Register(NodeSet::Of({i, j}), static_cast<double>(i * 24 + j),
                     1.0, kInvalidPlanRef, kInvalidPlanRef,
                     JoinOperator::kUnspecified);
    }
  }
  EXPECT_EQ(table.populated_count(), 24u * 23u / 2u);
  for (int i = 0; i < 24; ++i) {
    for (int j = i + 1; j < 24; ++j) {
      const PlanRef found = table.Find(NodeSet::Of({i, j}));
      ASSERT_NE(found, kInvalidPlanRef) << i << "," << j;
      EXPECT_DOUBLE_EQ(table.cost(found), static_cast<double>(i * 24 + j));
    }
  }
  uint64_t visited = 0;
  table.ForEach([&](NodeSet, PlanRef) { ++visited; });
  EXPECT_EQ(visited, table.populated_count());
}

PlanTable::LayerCandidate MakeCandidate(NodeSet set, PlanRef left,
                                        PlanRef right, double cost) {
  PlanTable::LayerCandidate candidate;
  candidate.set = set;
  candidate.left = left;
  candidate.right = right;
  candidate.cost = cost;
  candidate.cardinality = 1.0;
  return candidate;
}

class MergeLayerTest : public PlanTableBackendTest {};

TEST_P(MergeLayerTest, WinnerIsPartitionIndependent) {
  // Three candidates for the same set: the lowest cost wins, and among
  // equal costs the lexicographically smallest (left, right) ref pair —
  // so any permutation of the candidate list merges identically.
  const NodeSet s = NodeSet::Of({0, 1, 2});
  std::vector<std::vector<size_t>> orders = {
      {0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}};
  for (const auto& order : orders) {
    PlanTable table = MakeTable(6);
    const PlanRef l0 = table.RegisterLeaf(NodeSet::Of({0}), 1.0);
    const PlanRef l1 = table.RegisterLeaf(NodeSet::Of({1}), 1.0);
    const PlanRef l2 = table.RegisterLeaf(NodeSet::Of({2}), 1.0);
    const PlanRef p01 = table.Register(NodeSet::Of({0, 1}), 1.0, 1.0, l0, l1,
                                       JoinOperator::kHashJoin);
    const PlanRef p12 = table.Register(NodeSet::Of({1, 2}), 1.0, 1.0, l1, l2,
                                       JoinOperator::kHashJoin);
    const PlanRef p02 = table.Register(NodeSet::Of({0, 2}), 1.0, 1.0, l0, l2,
                                       JoinOperator::kHashJoin);
    const std::vector<PlanTable::LayerCandidate> base = {
        MakeCandidate(s, p01, l2, 5.0),
        MakeCandidate(s, l0, p12, 3.0),  // l0 (layer 1) < p02 (layer 2).
        MakeCandidate(s, p02, l1, 3.0),
    };
    std::vector<PlanTable::LayerCandidate> candidates;
    for (const size_t i : order) {
      candidates.push_back(base[i]);
    }
    int newly = 0;
    ASSERT_TRUE(table.MergeLayer(
        candidates, [&](const PlanTable::LayerCandidate&, bool fresh) {
          newly += fresh ? 1 : 0;
          return true;
        }));
    EXPECT_EQ(newly, 1);
    const PlanRef merged = table.Find(s);
    ASSERT_NE(merged, kInvalidPlanRef);
    EXPECT_DOUBLE_EQ(table.cost(merged), 3.0);
    // The cost-3 tie breaks toward the smaller left ref.
    EXPECT_EQ(table.left(merged), l0);
    EXPECT_EQ(table.right(merged), p12);
    EXPECT_EQ(table.populated_count(), 7u);
  }
}

TEST_P(MergeLayerTest, OnlyImprovesExistingEntries) {
  PlanTable table = MakeTable(6);
  const PlanRef l1 = table.RegisterLeaf(NodeSet::Of({1}), 1.0);
  const PlanRef l3 = table.RegisterLeaf(NodeSet::Of({3}), 1.0);
  const NodeSet s = NodeSet::Of({1, 3});
  const PlanRef existing =
      table.Register(s, 2.0, 1.0, l1, l3, JoinOperator::kHashJoin);

  // A worse candidate leaves the entry untouched (and is not "new").
  std::vector<PlanTable::LayerCandidate> worse = {
      MakeCandidate(s, l3, l1, 9.0)};
  ASSERT_TRUE(table.MergeLayer(
      worse, [](const PlanTable::LayerCandidate&, bool fresh) {
        EXPECT_FALSE(fresh);
        return true;
      }));
  EXPECT_DOUBLE_EQ(table.cost(existing), 2.0);
  EXPECT_EQ(table.left(existing), l1);
  EXPECT_EQ(table.populated_count(), 3u);

  // A better one replaces it without double-counting populated_count.
  std::vector<PlanTable::LayerCandidate> better = {
      MakeCandidate(s, l3, l1, 1.0)};
  ASSERT_TRUE(table.MergeLayer(
      better, [](const PlanTable::LayerCandidate&, bool) { return true; }));
  EXPECT_DOUBLE_EQ(table.cost(existing), 1.0);
  EXPECT_EQ(table.left(existing), l3);
  EXPECT_EQ(table.populated_count(), 3u);
}

TEST_P(MergeLayerTest, GateStopsInAscendingSetOrder) {
  PlanTable table = MakeTable(6);
  const PlanRef l0 = table.RegisterLeaf(NodeSet::Of({0}), 1.0);
  const PlanRef l1 = table.RegisterLeaf(NodeSet::Of({1}), 1.0);
  const PlanRef l2 = table.RegisterLeaf(NodeSet::Of({2}), 1.0);
  const PlanRef l3 = table.RegisterLeaf(NodeSet::Of({3}), 1.0);
  // Two sets; the gate rejects after the first winner, so the second
  // (higher-mask) set must remain unpopulated — matching a serial run
  // interrupted mid-layer.
  std::vector<PlanTable::LayerCandidate> candidates = {
      MakeCandidate(NodeSet::Of({2, 3}), l2, l3, 4.0),
      MakeCandidate(NodeSet::Of({0, 1}), l0, l1, 7.0),
  };
  int applied = 0;
  EXPECT_FALSE(table.MergeLayer(
      candidates, [&](const PlanTable::LayerCandidate& winner, bool) {
        ++applied;
        // Ascending set order: {0,1} (mask 3) precedes {2,3} (mask 12).
        EXPECT_EQ(winner.set, NodeSet::Of({0, 1}));
        return false;
      }));
  EXPECT_EQ(applied, 1);
  EXPECT_NE(table.Find(NodeSet::Of({0, 1})), kInvalidPlanRef);
  EXPECT_EQ(table.Find(NodeSet::Of({2, 3})), kInvalidPlanRef);
}

INSTANTIATE_TEST_SUITE_P(DenseAndSparse, MergeLayerTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Dense" : "Sparse";
                         });

TEST(PlanTableTest, RefsAreStableAcrossGrowth) {
  PlanTable table(10);
  const PlanRef first = table.RegisterLeaf(NodeSet::Of({0}), 1.0);
  // Appending many more entries must not invalidate the earlier ref or
  // its columns (slabs only grow; refs are (layer, offset), not
  // pointers).
  for (uint64_t mask = 2; mask < 512; ++mask) {
    table.Register(NodeSet::FromMask(mask), 2.0, 1.0, kInvalidPlanRef,
                   kInvalidPlanRef, JoinOperator::kUnspecified);
  }
  EXPECT_DOUBLE_EQ(table.cardinality(first), 1.0);
  EXPECT_DOUBLE_EQ(table.cost(first), 0.0);
  EXPECT_EQ(table.Find(NodeSet::Of({0})), first);
}

TEST(PlanTableTest, LayerOverflowReturnsInvalidRefWithoutCorruption) {
  // Shrink the 26-bit per-layer offset space to 3 entries so the
  // overflow path is reachable: the fourth same-layer Register must be
  // refused with kInvalidPlanRef instead of wrapping into a foreign
  // slot, and the table must stay fully usable afterwards.
  PlanTable table(10);
  table.SetLayerCapacityForTesting(3);
  std::vector<PlanRef> accepted;
  for (int i = 0; i + 1 < 10; ++i) {
    const PlanRef ref =
        table.Register(NodeSet::Of({i, i + 1}), 1.0, 1.0, kInvalidPlanRef,
                       kInvalidPlanRef, JoinOperator::kUnspecified);
    if (i < 3) {
      ASSERT_NE(ref, kInvalidPlanRef) << i;
      accepted.push_back(ref);
    } else {
      EXPECT_EQ(ref, kInvalidPlanRef) << i;
    }
  }
  // The accepted entries survived the refused ones untouched.
  for (size_t i = 0; i < accepted.size(); ++i) {
    EXPECT_DOUBLE_EQ(table.cost(accepted[i]), 1.0);
    EXPECT_EQ(table.Find(NodeSet::Of({static_cast<int>(i),
                                      static_cast<int>(i) + 1})),
              accepted[i]);
  }
  // A refused set reads back as absent, not as a damaged slot.
  EXPECT_EQ(table.Find(NodeSet::Of({4, 5})), kInvalidPlanRef);
  // Other layers are unaffected by one layer filling up.
  EXPECT_NE(table.Register(NodeSet::Of({0, 1, 2}), 2.0, 8.0, kInvalidPlanRef,
                           kInvalidPlanRef, JoinOperator::kUnspecified),
            kInvalidPlanRef);
}

TEST(PlanTableTest, InternOverflowReportsNotCreatedAndStaysAbsent) {
  PlanTable table(10);
  table.SetLayerCapacityForTesting(1);
  bool created = false;
  const auto estimate = [] { return 1.0; };
  ASSERT_NE(table.Intern(NodeSet::Of({0, 1}), created, estimate),
            kInvalidPlanRef);
  EXPECT_TRUE(created);
  // Second distinct 2-set overflows the 1-entry layer.
  const PlanRef refused = table.Intern(NodeSet::Of({2, 3}), created, estimate);
  EXPECT_EQ(refused, kInvalidPlanRef);
  EXPECT_FALSE(created);
  // The refused set must not leave a half-initialized index slot: a
  // retry still reports absent (and still refuses, capacity unchanged).
  EXPECT_EQ(table.Find(NodeSet::Of({2, 3})), kInvalidPlanRef);
  // Re-interning the set that DID land dedupes as usual.
  const PlanRef again = table.Intern(NodeSet::Of({0, 1}), created, estimate);
  EXPECT_FALSE(created);
  EXPECT_NE(again, kInvalidPlanRef);
}

/// The DP plumbing's view of an overflow: CreateJoinTree on a full layer
/// must refuse, trip the governor with a typed kBudgetExceeded naming
/// the 26-bit offset space, and leave the run on the normal sticky-limit
/// unwind path — never wrap, never crash.
TEST(PlanTableTest, DpJoinCreationSurfacesLayerOverflowAsTypedBudgetError) {
  const Result<QueryGraph> graph = MakeCliqueQuery(6, WorkloadConfig{});
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  OptimizerContext ctx(*graph, cost_model);
  ctx.InstallTable(internal::MakeAdaptivePlanTable(*graph));
  ASSERT_TRUE(internal::SeedLeafPlans(ctx));
  ctx.table().SetLayerCapacityForTesting(2);
  // Two 2-sets fit the shrunken layer...
  EXPECT_TRUE(
      internal::CreateJoinTree(ctx, NodeSet::Of({0}), NodeSet::Of({1})));
  EXPECT_TRUE(
      internal::CreateJoinTree(ctx, NodeSet::Of({2}), NodeSet::Of({3})));
  // ...the third overflows: refused, sticky, typed.
  EXPECT_FALSE(
      internal::CreateJoinTree(ctx, NodeSet::Of({4}), NodeSet::Of({5})));
  EXPECT_TRUE(ctx.exhausted());
  EXPECT_EQ(ctx.limit_status().code(), StatusCode::kBudgetExceeded);
  EXPECT_NE(ctx.limit_status().ToString().find("26-bit"), std::string::npos)
      << ctx.limit_status().ToString();
}

/// Relation-count guards of the 2^n-mask serial DPs: each must refuse
/// with a typed kInvalidArgument at entry — before any enumeration or
/// table allocation — instead of walking a years-long subset sweep or
/// risking the 64-bit mask / 26-bit PlanRef offset arithmetic near the
/// representation limits. Chain graphs keep construction O(n); the
/// guards fire long before any per-mask work, so these pins are instant.
TEST(PlanTableTest, SerialSubsetSweepsRefuseOversizedInputsTyped) {
  const CoutCostModel cost_model;
  const struct {
    const char* orderer;
    int refused_n;   // Smallest n the orderer must refuse...
    int accepted_n;  // ...and a nearby n it must still solve.
  } cases[] = {
      {"DPsub", 40, 12},
      {"DPsubCP", 25, 10},
      {"DPsizeCP", 25, 10},
      {"DPconv", 25, 12},
  };
  for (const auto& test : cases) {
    const JoinOrderer* orderer = OptimizerRegistry::Get(test.orderer);
    ASSERT_NE(orderer, nullptr) << test.orderer;
    const Result<QueryGraph> refused =
        MakeChainQuery(test.refused_n, WorkloadConfig{});
    ASSERT_TRUE(refused.ok()) << test.orderer;
    const auto result = orderer->Optimize(*refused, cost_model);
    ASSERT_FALSE(result.ok()) << test.orderer;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << test.orderer << ": " << result.status().ToString();
    // The refusal names the exponential it is avoiding (2^n or 3^n), so
    // operators can route the query to a polynomial orderer instead of
    // retrying.
    EXPECT_NE(result.status().message().find("^n"), std::string::npos)
        << test.orderer << ": " << result.status().ToString();
    const Result<QueryGraph> accepted =
        MakeChainQuery(test.accepted_n, WorkloadConfig{});
    ASSERT_TRUE(accepted.ok()) << test.orderer;
    EXPECT_TRUE(orderer->Optimize(*accepted, cost_model).ok())
        << test.orderer;
  }
}

/// The guard must also hold at the NodeSet representation ceiling
/// (n = 63: `1 << n` is the last in-range shift, and a naive
/// `(1 << n) - 1` limit computation is one relation away from UB).
TEST(PlanTableTest, SubsetSweepGuardsHoldAtTheMaskWidthCeiling) {
  const Result<QueryGraph> graph = MakeChainQuery(63, WorkloadConfig{});
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  for (const char* name : {"DPsub", "DPsubCP", "DPconv"}) {
    const auto result = OptimizerRegistry::Get(name)->Optimize(*graph,
                                                               cost_model);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << name;
  }
}

#ifndef NDEBUG
TEST(PlanTableDeathTest, AppendToFrozenLayerAssertsInDebugBuilds) {
  PlanTable table(6);
  table.RegisterLeaf(NodeSet::Of({0}), 1.0);
  table.FreezeLayer(2);
  EXPECT_DEATH(table.Register(NodeSet::Of({0, 1}), 1.0, 1.0, kInvalidPlanRef,
                              kInvalidPlanRef, JoinOperator::kUnspecified),
               "JOINOPT_CHECK failed");
  // Thaw lifts the freeze (MemoSalvage's post-enumeration writes).
  table.Thaw();
  const PlanRef ref =
      table.Register(NodeSet::Of({0, 1}), 1.0, 1.0, kInvalidPlanRef,
                     kInvalidPlanRef, JoinOperator::kUnspecified);
  EXPECT_EQ(table.Find(NodeSet::Of({0, 1})), ref);
}
#endif  // NDEBUG

}  // namespace
}  // namespace joinopt
