#include "plan/plan_table.h"

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

TEST(PlanEntryTest, DefaultHasNoPlan) {
  const PlanEntry entry;
  EXPECT_FALSE(entry.has_plan());
  EXPECT_FALSE(entry.IsLeaf());
}

TEST(PlanEntryTest, LeafDetection) {
  PlanEntry entry;
  entry.cost = 0.0;
  entry.cardinality = 100.0;
  EXPECT_TRUE(entry.has_plan());
  EXPECT_TRUE(entry.IsLeaf());
  entry.left = NodeSet::Of({0});
  entry.right = NodeSet::Of({1});
  EXPECT_FALSE(entry.IsLeaf());
}

TEST(PlanTableTest, BackendSelection) {
  EXPECT_TRUE(PlanTable(10).is_dense());
  EXPECT_TRUE(PlanTable(20).is_dense());
  EXPECT_FALSE(PlanTable(21).is_dense());
  EXPECT_FALSE(PlanTable(10, /*dense_limit=*/5).is_dense());
}

class PlanTableBackendTest : public ::testing::TestWithParam<bool> {
 protected:
  // Dense when GetParam() is true, sparse otherwise.
  PlanTable MakeTable(int n) {
    return PlanTable(n, GetParam() ? 20 : 0);
  }
};

TEST_P(PlanTableBackendTest, FindOnEmptyTableReturnsNull) {
  PlanTable table = MakeTable(6);
  EXPECT_EQ(table.Find(NodeSet::Of({0})), nullptr);
  EXPECT_EQ(table.Find(NodeSet::Of({1, 3})), nullptr);
  EXPECT_EQ(table.populated_count(), 0u);
}

TEST_P(PlanTableBackendTest, GetOrCreateThenFind) {
  PlanTable table = MakeTable(6);
  const NodeSet s = NodeSet::Of({2, 4});
  PlanEntry& entry = table.GetOrCreate(s);
  // An entry without a real cost is still "absent" for Find.
  EXPECT_EQ(table.Find(s), nullptr);
  entry.cost = 42.0;
  entry.cardinality = 7.0;
  table.NotePopulated();
  const PlanEntry* found = table.Find(s);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->cost, 42.0);
  EXPECT_EQ(table.populated_count(), 1u);
}

TEST_P(PlanTableBackendTest, DistinctSetsAreIndependent) {
  PlanTable table = MakeTable(8);
  for (int i = 0; i < 8; ++i) {
    PlanEntry& entry = table.GetOrCreate(NodeSet::Singleton(i));
    entry.cost = static_cast<double>(i);
    entry.cardinality = 1.0;
    table.NotePopulated();
  }
  for (int i = 0; i < 8; ++i) {
    const PlanEntry* entry = table.Find(NodeSet::Singleton(i));
    ASSERT_NE(entry, nullptr);
    EXPECT_DOUBLE_EQ(entry->cost, static_cast<double>(i));
  }
  EXPECT_EQ(table.populated_count(), 8u);
}

TEST_P(PlanTableBackendTest, UpdateKeepsBestPlan) {
  PlanTable table = MakeTable(4);
  const NodeSet s = NodeSet::Of({0, 1});
  PlanEntry& entry = table.GetOrCreate(s);
  entry.cost = 100.0;
  table.NotePopulated();
  // A cheaper plan replaces; DP algorithms implement the comparison, the
  // table just stores.
  PlanEntry& again = table.GetOrCreate(s);
  EXPECT_DOUBLE_EQ(again.cost, 100.0);
  again.cost = 50.0;
  EXPECT_DOUBLE_EQ(table.Find(s)->cost, 50.0);
  EXPECT_EQ(table.populated_count(), 1u);
}

TEST_P(PlanTableBackendTest, ForEachVisitsExactlyPopulatedEntries) {
  PlanTable table = MakeTable(5);
  const std::vector<NodeSet> sets = {NodeSet::Of({0}), NodeSet::Of({1, 2}),
                                     NodeSet::Of({0, 1, 2, 3, 4})};
  for (const NodeSet s : sets) {
    PlanEntry& entry = table.GetOrCreate(s);
    entry.cost = 1.0;
    table.NotePopulated();
  }
  // This one stays unpopulated (cost still infinity).
  table.GetOrCreate(NodeSet::Of({3}));

  uint64_t visited = 0;
  NodeSet all_visited;
  table.ForEach([&](NodeSet s, const PlanEntry& entry) {
    EXPECT_TRUE(entry.has_plan());
    all_visited |= s;
    ++visited;
  });
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(all_visited, NodeSet::Of({0, 1, 2, 3, 4}));
}

INSTANTIATE_TEST_SUITE_P(DenseAndSparse, PlanTableBackendTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Dense" : "Sparse";
                         });

TEST(AdaptivePlanTableTest, BackendTracksSearchSpaceDensity) {
  // Small n: always dense (the table is tiny either way).
  Result<QueryGraph> small = MakeChainQuery(10);
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(internal::MakeAdaptivePlanTable(*small).is_dense());

  // Large sparse shapes: the 2^n dense fill would dominate the run.
  Result<QueryGraph> chain = MakeChainQuery(20);
  ASSERT_TRUE(chain.ok());
  EXPECT_FALSE(internal::MakeAdaptivePlanTable(*chain).is_dense());
  Result<QueryGraph> cycle = MakeCycleQuery(20);
  ASSERT_TRUE(cycle.ok());
  EXPECT_FALSE(internal::MakeAdaptivePlanTable(*cycle).is_dense());

  // Large dense shapes: #csg is a big fraction of 2^n.
  Result<QueryGraph> star = MakeStarQuery(20);
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(internal::MakeAdaptivePlanTable(*star).is_dense());
  Result<QueryGraph> clique = MakeCliqueQuery(18);
  ASSERT_TRUE(clique.ok());
  EXPECT_TRUE(internal::MakeAdaptivePlanTable(*clique).is_dense());

  // Beyond the addressable dense range: forced sparse.
  Result<QueryGraph> huge = MakeChainQuery(40);
  ASSERT_TRUE(huge.ok());
  EXPECT_FALSE(internal::MakeAdaptivePlanTable(*huge).is_dense());
}

TEST(PlanTableTest, GenerationTracksSparseMutations) {
  // Dense backend: entries never move, so the generation stays at zero.
  PlanTable dense(10);
  EXPECT_EQ(dense.generation(), 0u);
  dense.GetOrCreate(NodeSet::Of({0, 1}));
  dense.GetOrCreate(NodeSet::Of({2}));
  EXPECT_EQ(dense.generation(), 0u);

  // Sparse backend: every new key may rehash and move entries, so each
  // insertion bumps the generation; re-touching an existing key does not.
  PlanTable sparse(10, /*dense_limit=*/0);
  EXPECT_EQ(sparse.generation(), 0u);
  sparse.GetOrCreate(NodeSet::Of({0, 1}));
  const uint64_t after_first = sparse.generation();
  EXPECT_GT(after_first, 0u);
  sparse.GetOrCreate(NodeSet::Of({0, 1}));
  EXPECT_EQ(sparse.generation(), after_first);
  sparse.GetOrCreate(NodeSet::Of({2, 3}));
  EXPECT_GT(sparse.generation(), after_first);
}

TEST_P(PlanTableBackendTest, FindRefBehavesLikeFind) {
  PlanTable table = MakeTable(6);
  EXPECT_FALSE(table.FindRef(NodeSet::Of({1, 2})));
  PlanEntry& entry = table.GetOrCreate(NodeSet::Of({1, 2}));
  entry.cost = 9.0;
  entry.cardinality = 3.0;
  table.NotePopulated();
  const PlanTable::ConstRef ref = table.FindRef(NodeSet::Of({1, 2}));
  ASSERT_TRUE(ref);
  EXPECT_DOUBLE_EQ(ref->cost, 9.0);
  EXPECT_DOUBLE_EQ((*ref).cardinality, 3.0);
}

#ifndef NDEBUG
TEST(PlanTableDeathTest, StaleSparseRefAssertsInDebugBuilds) {
  PlanTable table(10, /*dense_limit=*/0);
  PlanEntry& entry = table.GetOrCreate(NodeSet::Of({0}));
  entry.cost = 1.0;
  entry.cardinality = 1.0;
  table.NotePopulated();
  PlanTable::ConstRef ref = table.FindRef(NodeSet::Of({0}));
  ASSERT_TRUE(ref);
  // A subsequent insertion voids the handle per the documented
  // pointer-stability rule; dereferencing it must now trip the check.
  table.GetOrCreate(NodeSet::Of({1}));
  EXPECT_DEATH((void)ref->cost, "JOINOPT_CHECK failed");
}
#endif  // NDEBUG

TEST(PlanTableTest, DenseBackendCountsPreallocationAgainstBudget) {
  // 2^16 dense slots exceed a 100-entry budget: the table must fall back
  // to sparse so the memo budget is enforced identically on both
  // backends.
  EXPECT_FALSE(PlanTable(16, 20, /*memo_entry_budget=*/100).is_dense());
  EXPECT_TRUE(PlanTable(16, 20, uint64_t{1} << 16).is_dense());
  // Budget exactly 2^n still fits.
  EXPECT_TRUE(PlanTable(6, 20, 64).is_dense());
  EXPECT_FALSE(PlanTable(6, 20, 63).is_dense());
  // Zero budget means unlimited, as everywhere else.
  EXPECT_TRUE(PlanTable(16, 20, 0).is_dense());
}

TEST(PlanTableTest, ShardCountIsClampedToPowerOfTwo) {
  EXPECT_EQ(PlanTable(24).sparse_shard_count(), 1);
  EXPECT_EQ(PlanTable(24, 20, 0, 8).sparse_shard_count(), 8);
  EXPECT_EQ(PlanTable(24, 20, 0, 5).sparse_shard_count(), 4);
  EXPECT_EQ(PlanTable(24, 20, 0, 0).sparse_shard_count(), 1);
  EXPECT_EQ(PlanTable(24, 20, 0, 200).sparse_shard_count(), 64);
  // Dense tables have no stripes.
  EXPECT_EQ(PlanTable(10, 20, 0, 8).sparse_shard_count(), 1);
}

TEST(PlanTableTest, ShardedSparseBackendFindsAndIterates) {
  PlanTable table(24, /*dense_limit=*/20, /*memo_entry_budget=*/0,
                  /*sparse_shards=*/8);
  ASSERT_FALSE(table.is_dense());
  for (int i = 0; i < 24; ++i) {
    for (int j = i + 1; j < 24; ++j) {
      PlanEntry& entry = table.GetOrCreate(NodeSet::Of({i, j}));
      entry.cost = static_cast<double>(i * 24 + j);
      entry.cardinality = 1.0;
      table.NotePopulated();
    }
  }
  EXPECT_EQ(table.populated_count(), 24u * 23u / 2u);
  for (int i = 0; i < 24; ++i) {
    for (int j = i + 1; j < 24; ++j) {
      const PlanEntry* found = table.Find(NodeSet::Of({i, j}));
      ASSERT_NE(found, nullptr) << i << "," << j;
      EXPECT_DOUBLE_EQ(found->cost, static_cast<double>(i * 24 + j));
    }
  }
  uint64_t visited = 0;
  table.ForEach([&](NodeSet, const PlanEntry&) { ++visited; });
  EXPECT_EQ(visited, table.populated_count());
}

PlanTable::LayerCandidate MakeCandidate(NodeSet set, NodeSet left,
                                        NodeSet right, double cost) {
  PlanTable::LayerCandidate candidate;
  candidate.set = set;
  candidate.entry.left = left;
  candidate.entry.right = right;
  candidate.entry.cost = cost;
  candidate.entry.cardinality = 1.0;
  return candidate;
}

TEST_P(PlanTableBackendTest, MergeLayerWinnerIsPartitionIndependent) {
  // Three candidates for the same set: the lowest cost wins, and among
  // equal costs the lexicographically smallest (left, right) pair — so
  // any permutation of the candidate list merges identically.
  const NodeSet s = NodeSet::Of({0, 1, 2});
  const std::vector<PlanTable::LayerCandidate> base = {
      MakeCandidate(s, NodeSet::Of({0, 1}), NodeSet::Of({2}), 5.0),
      MakeCandidate(s, NodeSet::Of({0}), NodeSet::Of({1, 2}), 3.0),
      MakeCandidate(s, NodeSet::Of({0, 2}), NodeSet::Of({1}), 3.0),
  };
  std::vector<std::vector<size_t>> orders = {
      {0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}};
  for (const auto& order : orders) {
    PlanTable table = MakeTable(6);
    std::vector<PlanTable::LayerCandidate> candidates;
    for (const size_t i : order) {
      candidates.push_back(base[i]);
    }
    int newly = 0;
    ASSERT_TRUE(table.MergeLayer(
        candidates, [&](const PlanTable::LayerCandidate&, bool fresh) {
          newly += fresh ? 1 : 0;
          return true;
        }));
    EXPECT_EQ(newly, 1);
    const PlanEntry* merged = table.Find(s);
    ASSERT_NE(merged, nullptr);
    EXPECT_DOUBLE_EQ(merged->cost, 3.0);
    // The cost-3 tie breaks toward left = {0} over left = {0, 2}.
    EXPECT_EQ(merged->left, NodeSet::Of({0}));
    EXPECT_EQ(merged->right, NodeSet::Of({1, 2}));
    EXPECT_EQ(table.populated_count(), 1u);
  }
}

TEST_P(PlanTableBackendTest, MergeLayerOnlyImprovesExistingEntries) {
  PlanTable table = MakeTable(6);
  const NodeSet s = NodeSet::Of({1, 3});
  PlanEntry& existing = table.GetOrCreate(s);
  existing.left = NodeSet::Of({1});
  existing.right = NodeSet::Of({3});
  existing.cost = 2.0;
  existing.cardinality = 1.0;
  table.NotePopulated();

  // A worse candidate leaves the entry untouched (and is not "new").
  std::vector<PlanTable::LayerCandidate> worse = {
      MakeCandidate(s, NodeSet::Of({3}), NodeSet::Of({1}), 9.0)};
  ASSERT_TRUE(table.MergeLayer(
      worse, [](const PlanTable::LayerCandidate&, bool fresh) {
        EXPECT_FALSE(fresh);
        return true;
      }));
  EXPECT_DOUBLE_EQ(table.Find(s)->cost, 2.0);
  EXPECT_EQ(table.populated_count(), 1u);

  // A better one replaces it without double-counting populated_count.
  std::vector<PlanTable::LayerCandidate> better = {
      MakeCandidate(s, NodeSet::Of({3}), NodeSet::Of({1}), 1.0)};
  ASSERT_TRUE(table.MergeLayer(
      better, [](const PlanTable::LayerCandidate&, bool) { return true; }));
  EXPECT_DOUBLE_EQ(table.Find(s)->cost, 1.0);
  EXPECT_EQ(table.Find(s)->left, NodeSet::Of({3}));
  EXPECT_EQ(table.populated_count(), 1u);
}

TEST_P(PlanTableBackendTest, MergeLayerGateStopsInAscendingSetOrder) {
  PlanTable table = MakeTable(6);
  // Two sets; the gate rejects after the first winner, so the second
  // (higher-mask) set must remain unpopulated — matching a serial run
  // interrupted mid-layer.
  std::vector<PlanTable::LayerCandidate> candidates = {
      MakeCandidate(NodeSet::Of({2, 3}), NodeSet::Of({2}), NodeSet::Of({3}),
                    4.0),
      MakeCandidate(NodeSet::Of({0, 1}), NodeSet::Of({0}), NodeSet::Of({1}),
                    7.0),
  };
  int applied = 0;
  EXPECT_FALSE(table.MergeLayer(
      candidates, [&](const PlanTable::LayerCandidate& winner, bool) {
        ++applied;
        // Ascending set order: {0,1} (mask 3) precedes {2,3} (mask 12).
        EXPECT_EQ(winner.set, NodeSet::Of({0, 1}));
        return false;
      }));
  EXPECT_EQ(applied, 1);
  EXPECT_NE(table.Find(NodeSet::Of({0, 1})), nullptr);
  EXPECT_EQ(table.Find(NodeSet::Of({2, 3})), nullptr);
}

TEST(PlanTableTest, DensePointersAreStable) {
  PlanTable table(10);
  PlanEntry& first = table.GetOrCreate(NodeSet::Of({0}));
  first.cost = 1.0;
  table.NotePopulated();
  // Creating many more entries must not move the dense slot.
  for (uint64_t mask = 2; mask < 512; ++mask) {
    table.GetOrCreate(NodeSet::FromMask(mask)).cost = 2.0;
    table.NotePopulated();
  }
  EXPECT_DOUBLE_EQ(first.cost, 1.0);
  EXPECT_EQ(table.Find(NodeSet::Of({0})), &first);
}

}  // namespace
}  // namespace joinopt
