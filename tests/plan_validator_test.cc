#include "plan/plan_validator.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "core/dpsize.h"
#include "cost/cardinality.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

PlanTable ValidChainTable(const QueryGraph& graph) {
  // ((0 ⋈ 1) ⋈ 2) with honest Cout costs and independence cardinalities.
  const CardinalityEstimator estimator(graph);
  const CoutCostModel cost_model;
  PlanTable table(3);
  PlanRef leaves[3];
  for (int i = 0; i < 3; ++i) {
    leaves[i] = table.RegisterLeaf(NodeSet::Singleton(i), graph.cardinality(i));
  }
  const double card01 = estimator.EstimateSet(NodeSet::Of({0, 1}));
  const double cost01 = cost_model.JoinCost(graph.cardinality(0),
                                            graph.cardinality(1), card01);
  const PlanRef pair = table.Register(NodeSet::Of({0, 1}), cost01, card01,
                                      leaves[0], leaves[1],
                                      JoinOperator::kHashJoin);
  const double card012 = estimator.EstimateSet(NodeSet::Of({0, 1, 2}));
  table.Register(
      NodeSet::Of({0, 1, 2}),
      cost01 + cost_model.JoinCost(card01, graph.cardinality(2), card012),
      card012, pair, leaves[2], JoinOperator::kHashJoin);
  return table;
}

TEST(PlanValidatorTest, AcceptsHonestPlan) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  const PlanTable table = ValidChainTable(*graph);
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(ValidatePlan(*tree, *graph, CoutCostModel()).ok());
}

TEST(PlanValidatorTest, RejectsWrongCost) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  PlanTable table = ValidChainTable(*graph);
  const PlanRef root = table.Find(NodeSet::Of({0, 1, 2}));
  table.SetPlan(root, table.cost(root) * 2.0, table.left(root),
                table.right(root), table.op(root));
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  ASSERT_TRUE(tree.ok());
  const Status status = ValidatePlan(*tree, *graph, CoutCostModel());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cost mismatch"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsWrongCardinality) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  const CardinalityEstimator estimator(*graph);
  const CoutCostModel cost_model;
  PlanTable table(3);
  PlanRef leaves[3];
  for (int i = 0; i < 3; ++i) {
    leaves[i] =
        table.RegisterLeaf(NodeSet::Singleton(i), graph->cardinality(i));
  }
  // The pair entry lies about its cardinality by +1000.
  const double card01 = estimator.EstimateSet(NodeSet::Of({0, 1})) + 1000.0;
  const PlanRef pair = table.Register(
      NodeSet::Of({0, 1}),
      cost_model.JoinCost(graph->cardinality(0), graph->cardinality(1),
                          card01),
      card01, leaves[0], leaves[1], JoinOperator::kHashJoin);
  const double card012 = estimator.EstimateSet(NodeSet::Of({0, 1, 2}));
  table.Register(
      NodeSet::Of({0, 1, 2}),
      table.cost(pair) +
          cost_model.JoinCost(card01, graph->cardinality(2), card012),
      card012, pair, leaves[2], JoinOperator::kHashJoin);
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(ValidatePlan(*tree, *graph, CoutCostModel()).ok());
}

TEST(PlanValidatorTest, RejectsCrossProductWhenForbidden) {
  // Chain 0-1-2: the join ({0}, {2}) has no edge.
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  const CardinalityEstimator estimator(*graph);
  const CoutCostModel cost_model;
  PlanTable table(3);
  PlanRef leaves[3];
  for (int i = 0; i < 3; ++i) {
    leaves[i] =
        table.RegisterLeaf(NodeSet::Singleton(i), graph->cardinality(i));
  }
  const double card02 = graph->cardinality(0) * graph->cardinality(2);
  const PlanRef cross = table.Register(
      NodeSet::Of({0, 2}),
      cost_model.JoinCost(graph->cardinality(0), graph->cardinality(2),
                          card02),
      card02, leaves[0], leaves[2], JoinOperator::kHashJoin);
  const double card_all = estimator.EstimateSet(NodeSet::Of({0, 1, 2}));
  table.Register(
      NodeSet::Of({0, 1, 2}),
      table.cost(cross) +
          cost_model.JoinCost(card02, graph->cardinality(1), card_all),
      card_all, cross, leaves[1], JoinOperator::kHashJoin);

  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({0, 1, 2}));
  ASSERT_TRUE(tree.ok());

  const Status strict = ValidatePlan(*tree, *graph, cost_model);
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.message().find("cross product"), std::string::npos);

  PlanValidationOptions relaxed;
  relaxed.forbid_cross_products = false;
  EXPECT_TRUE(ValidatePlan(*tree, *graph, cost_model, relaxed).ok());
}

TEST(PlanValidatorTest, RejectsEmptyTree) {
  Result<QueryGraph> graph = MakeChainQuery(2);
  ASSERT_TRUE(graph.ok());
  // No public way to produce an empty JoinTree; validate the guard via a
  // default-constructed vector route is impossible, so this checks the
  // validator on a real single-leaf tree instead (must pass).
  PlanTable table(2);
  table.RegisterLeaf(NodeSet::Singleton(1), graph->cardinality(1));
  Result<JoinTree> tree = JoinTree::FromPlanTable(table, NodeSet::Of({1}));
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(ValidatePlan(*tree, *graph, CoutCostModel()).ok());
}

TEST(PlanValidatorTest, AcceptsEveryOptimizerOutputOnRandomGraphs) {
  const CoutCostModel cout_model;
  const HashJoinCostModel hash_model;
  const DPccp dpccp;
  const DPsize dpsize;
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(8, 4, config);
    ASSERT_TRUE(graph.ok());
    for (const CostModel* model :
         {static_cast<const CostModel*>(&cout_model),
          static_cast<const CostModel*>(&hash_model)}) {
      for (const JoinOrderer* optimizer :
           {static_cast<const JoinOrderer*>(&dpccp),
            static_cast<const JoinOrderer*>(&dpsize)}) {
        Result<OptimizationResult> result = optimizer->Optimize(*graph, *model);
        ASSERT_TRUE(result.ok());
        EXPECT_TRUE(ValidatePlan(result->plan, *graph, *model).ok())
            << optimizer->name() << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace joinopt
