/// Tests for the declarative degradation-policy engine (core/policy):
/// the grammar (Parse/ToString round trips, typed rejection of bad
/// input), the documented default ladder, and the executor semantics —
/// step fall-through on resource trips, per-step retries with doubled
/// limits, salvage arming, and the limits-stripped final step.

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "core/policy.h"
#include "joinopt.h"
#include "testing/fault_injection.h"

namespace joinopt {
namespace {

using testing::FaultConfig;
using testing::FaultPoint;
using testing::ScopedFaultInjection;

TEST(PolicyGrammarTest, DefaultIsTheDocumentedLadder) {
  const DegradationPolicy policy = DegradationPolicy::Default();
  ASSERT_EQ(policy.steps().size(), 3u);
  EXPECT_EQ(policy.steps()[0].algorithm, "DPccp");
  EXPECT_TRUE(policy.steps()[0].salvage);
  EXPECT_EQ(policy.steps()[1].algorithm, "IDP1");
  EXPECT_EQ(policy.steps()[1].k, 5);
  EXPECT_EQ(policy.steps()[2].algorithm, "GOO");
  EXPECT_EQ(policy.ToString(), "DPccp -> salvage -> IDP1[k=5] -> GOO");
}

TEST(PolicyGrammarTest, ParseReadsStepsAttributesAndSalvage) {
  Result<DegradationPolicy> policy = DegradationPolicy::Parse(
      "DPsub[budget=0.5,deadline=0.25,retries=2] -> salvage -> GOO");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  ASSERT_EQ(policy->steps().size(), 2u);
  const PolicyStep& first = policy->steps()[0];
  EXPECT_EQ(first.algorithm, "DPsub");
  EXPECT_DOUBLE_EQ(first.budget_scale, 0.5);
  EXPECT_DOUBLE_EQ(first.deadline_slice, 0.25);
  EXPECT_EQ(first.retries, 2);
  EXPECT_TRUE(first.salvage);
  EXPECT_FALSE(policy->steps()[1].salvage);
}

TEST(PolicyGrammarTest, ToStringRoundTripsThroughParse) {
  const char* const texts[] = {
      "DPccp -> salvage -> IDP1[k=5] -> GOO",
      "DPsize[budget=0.5] -> GOO",
      "DPhyp[retries=3] -> salvage",
      "Adaptive",
  };
  for (const char* text : texts) {
    Result<DegradationPolicy> parsed = DegradationPolicy::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed->ToString(), text);
    Result<DegradationPolicy> reparsed =
        DegradationPolicy::Parse(parsed->ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed->ToString(), parsed->ToString());
  }
}

TEST(PolicyGrammarTest, RejectsMalformedPolicies) {
  const char* const bad[] = {
      "",                          // no steps
      "salvage",                   // salvage with no step before it
      "salvage -> DPccp",          // ditto
      "NoSuchAlgorithm",           // not in the registry
      "DPccp[budget=0]",           // fraction must be in (0, 1]
      "DPccp[budget=1.5]",         // ditto
      "DPccp[deadline=-1]",        // ditto
      "DPccp[retries=9]",          // beyond the retry cap
      "DPccp[retries=-1]",         // negative
      "IDP1[k=1]",                 // block size below 2
      "DPccp[frobs=3]",            // unknown attribute
      "DPccp[budget]",             // attribute without value
      "DPccp[budget=0.5",          // unclosed bracket
      "DPccp ->",                  // trailing arrow
  };
  for (const char* text : bad) {
    Result<DegradationPolicy> parsed = DegradationPolicy::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: '" << text << "'";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(PolicyGrammarTest, UnknownAlgorithmErrorListsTheRegistry) {
  Result<DegradationPolicy> parsed = DegradationPolicy::Parse("NopeDP");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("DPccp"), std::string::npos)
      << parsed.status().ToString();
}

TEST(PolicyExecutorTest, FirstStepSucceedingIsReturnedVerbatim) {
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  Result<DegradationPolicy> policy = DegradationPolicy::Parse("DPccp -> GOO");
  ASSERT_TRUE(policy.ok());
  OptimizerContext ctx(*graph, cost_model);
  Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.algorithm, "DPccp");
  EXPECT_TRUE(result->stats.fallback_from.empty());
  EXPECT_FALSE(result->stats.best_effort);
  Result<OptimizationResult> exact =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(result->cost, exact->cost);
}

TEST(PolicyExecutorTest, ResourceTripFallsThroughAndRecordsTheTrail) {
  Result<QueryGraph> graph = MakeCliqueQuery(8);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  // Budget 0.001 of 4000 entries = 4: enough for the leaves only, so the
  // exact steps trip and the ladder bottoms out in GOO.
  Result<DegradationPolicy> policy = DegradationPolicy::Parse(
      "DPccp[budget=0.001] -> DPsub[budget=0.001] -> GOO");
  ASSERT_TRUE(policy.ok());
  OptimizeOptions options;
  options.memo_entry_budget = 4000;
  OptimizerContext ctx(*graph, cost_model, options);
  Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.algorithm, "GOO");
  EXPECT_EQ(result->stats.fallback_from, "DPccp,DPsub");
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, cost_model).ok());
  // The context mirrors the returned stats (the Adaptive contract).
  EXPECT_EQ(ctx.stats().algorithm, "GOO");
}

TEST(PolicyExecutorTest, SalvageStepReturnsBestEffortInsteadOfFalling) {
  Result<QueryGraph> graph = MakeCliqueQuery(8);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  Result<DegradationPolicy> policy = DegradationPolicy::Parse(
      "DPccp[budget=0.01] -> salvage -> GOO");
  ASSERT_TRUE(policy.ok());
  OptimizeOptions options;
  options.memo_entry_budget = 2000;  // 1% = 20 entries: trips mid-run.
  OptimizerContext ctx(*graph, cost_model, options);
  Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The salvage arm keeps DPccp's partial work: no fall-through to GOO.
  EXPECT_EQ(result->stats.algorithm, "DPccp");
  EXPECT_TRUE(result->stats.best_effort);
  EXPECT_TRUE(result->stats.fallback_from.empty());
  EXPECT_TRUE(result->degradation.best_effort);
  EXPECT_EQ(result->degradation.policy, policy->ToString());
  EXPECT_TRUE(ValidatePlan(result->plan, *graph, cost_model).ok());
}

TEST(PolicyExecutorTest, RetriesDoubleTheBudgetUntilTheRunFits) {
  Result<QueryGraph> graph = MakeChainQuery(10);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  // Chain-10 needs 54 entries; 0.1 x 160 = 16 fails, one retry doubles
  // it to 32 (fails), a second to 64 (fits). GOO backstops a regression.
  Result<DegradationPolicy> policy =
      DegradationPolicy::Parse("DPccp[budget=0.1,retries=2] -> GOO");
  ASSERT_TRUE(policy.ok());
  OptimizeOptions options;
  options.memo_entry_budget = 160;
  OptimizerContext ctx(*graph, cost_model, options);
  Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.algorithm, "DPccp");
  EXPECT_TRUE(result->stats.fallback_from.empty());
  Result<OptimizationResult> exact =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(result->cost, exact->cost);
}

TEST(PolicyExecutorTest, FinalStepRunsLimitsStrippedAfterFailures) {
  Result<QueryGraph> graph = MakeCliqueQuery(8);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  // Both steps get a 4-entry budget; the final DPccp would trip it too,
  // but the executor strips limits from a final step reached by falling,
  // so the result is the exact optimum.
  Result<DegradationPolicy> policy = DegradationPolicy::Parse(
      "DPsub[budget=0.002] -> DPccp[budget=0.002]");
  ASSERT_TRUE(policy.ok());
  OptimizeOptions options;
  options.memo_entry_budget = 2000;
  OptimizerContext ctx(*graph, cost_model, options);
  Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.algorithm, "DPccp");
  EXPECT_EQ(result->stats.fallback_from, "DPsub");
  Result<OptimizationResult> exact =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(result->cost, exact->cost);
}

TEST(PolicyExecutorTest, NestedLadderFallbacksSurviveTheOuterPolicy) {
  Result<QueryGraph> graph = MakeChainQuery(10);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  // A single-step policy whose one step is itself a ladder: Adaptive's
  // gate picks DPccp on a chain, the 16-entry budget trips it (chain-10
  // needs 54), and the internal ladder degrades. The outer executor must
  // not clobber the nested fallback trail — the serving layer's
  // cacheability check reads fallback_from to keep plans shaped by this
  // request's budget out of the exact-plan cache.
  Result<DegradationPolicy> policy = DegradationPolicy::Parse("Adaptive");
  ASSERT_TRUE(policy.ok());
  OptimizeOptions options;
  options.memo_entry_budget = 16;
  OptimizerContext ctx(*graph, cost_model, options);
  Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->stats.fallback_from.find("DPccp"), std::string::npos)
      << "nested fallback trail lost; fallback_from: '"
      << result->stats.fallback_from << "'";
}

TEST(PolicyExecutorTest, InternalFaultDoesNotFallThroughSteps) {
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  Result<DegradationPolicy> policy = DegradationPolicy::Parse("DPccp -> GOO");
  ASSERT_TRUE(policy.ok());
  FaultConfig config;
  config.at(FaultPoint::kArenaAlloc) = 3;
  ScopedFaultInjection scoped(config);
  // Construct inside the scope: the governor caches the injector's armed
  // state at construction.
  OptimizerContext ctx(*graph, cost_model);
  Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
  // kInternal is a real failure, not a resource trip: the ladder aborts
  // instead of papering over it with GOO (the historical contract).
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(PolicyExecutorTest, InternalFaultIsRetriedWithinTheStep) {
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  Result<DegradationPolicy> policy =
      DegradationPolicy::Parse("DPccp[retries=1] -> GOO");
  ASSERT_TRUE(policy.ok());
  FaultConfig config;
  config.at(FaultPoint::kArenaAlloc) = 3;  // Fires once, then never again.
  ScopedFaultInjection scoped(config);
  OptimizerContext ctx(*graph, cost_model);
  Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.algorithm, "DPccp");
  Result<OptimizationResult> exact =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(result->cost, exact->cost);
}

/// JOINOPT_POLICY drives AdaptiveOptimizer end to end; a malformed value
/// is a hard InvalidArgument, not a silent fallback to the default.
TEST(PolicyEnvTest, AdaptiveHonorsJoinoptPolicy) {
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  const CoutCostModel cost_model;
  const JoinOrderer* adaptive = OptimizerRegistry::Get("Adaptive");

  ASSERT_EQ(setenv("JOINOPT_POLICY", "GOO", /*overwrite=*/1), 0);
  Result<OptimizationResult> greedy = adaptive->Optimize(*graph, cost_model);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  EXPECT_EQ(greedy->stats.algorithm, "GOO");

  ASSERT_EQ(setenv("JOINOPT_POLICY", "not a policy", 1), 0);
  Result<OptimizationResult> broken = adaptive->Optimize(*graph, cost_model);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kInvalidArgument);

  ASSERT_EQ(unsetenv("JOINOPT_POLICY"), 0);
  Result<OptimizationResult> normal = adaptive->Optimize(*graph, cost_model);
  ASSERT_TRUE(normal.ok()) << normal.status().ToString();
  EXPECT_EQ(normal->stats.algorithm, "DPccp");
}

TEST(PolicyEnvTest, FromEnvFallsBackToDefaultWhenUnset) {
  ASSERT_EQ(unsetenv("JOINOPT_POLICY"), 0);
  Result<DegradationPolicy> policy = DegradationPolicy::FromEnv();
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->ToString(), DegradationPolicy::Default().ToString());
}

}  // namespace
}  // namespace joinopt
