#include "graph/query_graph.h"

#include <gtest/gtest.h>

#include "bitset/node_set.h"

namespace joinopt {
namespace {

QueryGraph Chain4() {
  // 0 - 1 - 2 - 3 with distinct selectivities.
  Result<QueryGraph> graph = QueryGraph::WithRelations(4, 100.0);
  EXPECT_TRUE(graph.ok());
  EXPECT_TRUE(graph->AddEdge(0, 1, 0.1).ok());
  EXPECT_TRUE(graph->AddEdge(1, 2, 0.2).ok());
  EXPECT_TRUE(graph->AddEdge(2, 3, 0.5).ok());
  return std::move(*graph);
}

TEST(QueryGraphTest, EmptyGraph) {
  const QueryGraph graph;
  EXPECT_EQ(graph.relation_count(), 0);
  EXPECT_EQ(graph.edge_count(), 0);
  EXPECT_TRUE(graph.AllRelations().empty());
}

TEST(QueryGraphTest, WithRelationsValidatesCount) {
  EXPECT_FALSE(QueryGraph::WithRelations(-1).ok());
  EXPECT_FALSE(QueryGraph::WithRelations(65).ok());
  EXPECT_TRUE(QueryGraph::WithRelations(64).ok());
}

TEST(QueryGraphTest, AddRelationAssignsIndicesAndDefaults) {
  QueryGraph graph;
  Result<int> first = graph.AddRelation(10.0);
  Result<int> second = graph.AddRelation(20.0, "orders");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, 0);
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(graph.name(0), "R0");
  EXPECT_EQ(graph.name(1), "orders");
  EXPECT_DOUBLE_EQ(graph.cardinality(0), 10.0);
  EXPECT_DOUBLE_EQ(graph.cardinality(1), 20.0);
}

TEST(QueryGraphTest, AddRelationRejectsNonPositiveCardinality) {
  QueryGraph graph;
  EXPECT_FALSE(graph.AddRelation(0.0).ok());
  EXPECT_FALSE(graph.AddRelation(-5.0).ok());
}

TEST(QueryGraphTest, AddRelationRejectsOverflowPast64) {
  Result<QueryGraph> graph = QueryGraph::WithRelations(64);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->AddRelation(10.0).status().code(), StatusCode::kOutOfRange);
}

TEST(QueryGraphTest, AddEdgeValidation) {
  Result<QueryGraph> graph = QueryGraph::WithRelations(3);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->AddEdge(0, 0, 0.5).ok());   // Self-loop.
  EXPECT_FALSE(graph->AddEdge(0, 3, 0.5).ok());   // Out of range.
  EXPECT_FALSE(graph->AddEdge(-1, 1, 0.5).ok());  // Out of range.
  EXPECT_FALSE(graph->AddEdge(0, 1, 0.0).ok());   // Selectivity 0.
  EXPECT_FALSE(graph->AddEdge(0, 1, 1.5).ok());   // Selectivity > 1.
  EXPECT_TRUE(graph->AddEdge(0, 1, 1.0).ok());    // Selectivity 1 is legal.
  EXPECT_FALSE(graph->AddEdge(1, 0, 0.5).ok());   // Duplicate (undirected).
}

TEST(QueryGraphTest, NeighborsAndHasEdge) {
  const QueryGraph graph = Chain4();
  EXPECT_EQ(graph.Neighbors(0), NodeSet::Of({1}));
  EXPECT_EQ(graph.Neighbors(1), NodeSet::Of({0, 2}));
  EXPECT_EQ(graph.Neighbors(2), NodeSet::Of({1, 3}));
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_TRUE(graph.HasEdge(2, 1));
  EXPECT_FALSE(graph.HasEdge(0, 2));
  EXPECT_FALSE(graph.HasEdge(1, 1));
}

TEST(QueryGraphTest, NeighborhoodOfSetExcludesTheSet) {
  const QueryGraph graph = Chain4();
  EXPECT_EQ(graph.Neighborhood(NodeSet::Of({1, 2})), NodeSet::Of({0, 3}));
  EXPECT_EQ(graph.Neighborhood(NodeSet::Of({0})), NodeSet::Of({1}));
  EXPECT_EQ(graph.Neighborhood(NodeSet::Of({0, 1, 2, 3})), NodeSet());
  EXPECT_EQ(graph.Neighborhood(NodeSet()), NodeSet());
}

TEST(QueryGraphTest, AreConnectedMatchesCutEdges) {
  const QueryGraph graph = Chain4();
  EXPECT_TRUE(graph.AreConnected(NodeSet::Of({0, 1}), NodeSet::Of({2, 3})));
  EXPECT_TRUE(graph.AreConnected(NodeSet::Of({0}), NodeSet::Of({1})));
  EXPECT_FALSE(graph.AreConnected(NodeSet::Of({0}), NodeSet::Of({2, 3})));
  EXPECT_FALSE(graph.AreConnected(NodeSet::Of({0}), NodeSet::Of({3})));
}

TEST(QueryGraphTest, SelectivityBetweenMultipliesCrossingEdges) {
  const QueryGraph graph = Chain4();
  EXPECT_DOUBLE_EQ(graph.SelectivityBetween(NodeSet::Of({0}), NodeSet::Of({1})),
                   0.1);
  EXPECT_DOUBLE_EQ(
      graph.SelectivityBetween(NodeSet::Of({0, 1}), NodeSet::Of({2, 3})), 0.2);
  // No crossing edge -> neutral element (cross product).
  EXPECT_DOUBLE_EQ(graph.SelectivityBetween(NodeSet::Of({0}), NodeSet::Of({3})),
                   1.0);
}

TEST(QueryGraphTest, SelectivityBetweenWithMultipleCrossingEdges) {
  // Triangle: the cut ({0}, {1, 2}) is crossed by two edges.
  Result<QueryGraph> graph = QueryGraph::WithRelations(3);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->AddEdge(0, 1, 0.1).ok());
  ASSERT_TRUE(graph->AddEdge(0, 2, 0.2).ok());
  ASSERT_TRUE(graph->AddEdge(1, 2, 0.5).ok());
  EXPECT_DOUBLE_EQ(
      graph->SelectivityBetween(NodeSet::Of({0}), NodeSet::Of({1, 2})),
      0.1 * 0.2);
}

TEST(QueryGraphTest, SelectivityWithinMultipliesInternalEdges) {
  const QueryGraph graph = Chain4();
  EXPECT_DOUBLE_EQ(graph.SelectivityWithin(NodeSet::Of({0, 1, 2})), 0.1 * 0.2);
  EXPECT_DOUBLE_EQ(graph.SelectivityWithin(NodeSet::Of({0, 1, 2, 3})),
                   0.1 * 0.2 * 0.5);
  EXPECT_DOUBLE_EQ(graph.SelectivityWithin(NodeSet::Of({0, 3})), 1.0);
  EXPECT_DOUBLE_EQ(graph.SelectivityWithin(NodeSet::Of({1})), 1.0);
}

TEST(QueryGraphTest, EdgesPreservedInInsertionOrder) {
  const QueryGraph graph = Chain4();
  ASSERT_EQ(graph.edge_count(), 3);
  EXPECT_EQ(graph.edges()[1].left, 1);
  EXPECT_EQ(graph.edges()[1].right, 2);
  EXPECT_DOUBLE_EQ(graph.edges()[1].selectivity, 0.2);
}

}  // namespace
}  // namespace joinopt
