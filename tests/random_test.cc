#include "util/random.h"

#include <vector>

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(RandomTest, SameSeedSameStream) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, UniformStaysInBound) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformBoundOneIsAlwaysZero) {
  Random rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RandomTest, UniformHitsAllValues) {
  Random rng(99);
  std::vector<int> histogram(8, 0);
  for (int i = 0; i < 4000; ++i) {
    ++histogram[rng.Uniform(8)];
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_GT(histogram[i], 300) << "bucket " << i;  // ~500 expected.
  }
}

TEST(RandomTest, UniformInRangeInclusive) {
  Random rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, UniformDoubleRespectsRange) {
  Random rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble(2.5, 4.0);
    EXPECT_GE(d, 2.5);
    EXPECT_LT(d, 4.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace joinopt
