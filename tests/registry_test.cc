#include "core/registry.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/idp.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"
#include "util/macros.h"

namespace joinopt {
namespace {

/// Every orderer the registry must ship with. Kept as an explicit list so
/// that adding an algorithm without registering it (or silently dropping a
/// registration) fails here instead of surfacing as a missing bench row.
const char* const kBuiltins[] = {
    "Adaptive",  "DPccp",     "DPconv",       "DPhyp",  "DPsize",
    "DPsizeBasic", "DPsizeCP", "DPsizePar",   "DPsizeLinear", "DPsub",
    "DPsubBFS",  "DPsubCP",   "DPsubPar",     "GOO",    "IDP1",
    "IKKBZ",     "LinDP",     "TDBasic",
};

TEST(OptimizerRegistryTest, AllBuiltinsRegistered) {
  for (const char* name : kBuiltins) {
    EXPECT_NE(OptimizerRegistry::Get(name), nullptr) << name;
  }
}

TEST(OptimizerRegistryTest, NamesAreSortedAndCoverBuiltins) {
  const std::vector<std::string> names = OptimizerRegistry::Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* builtin : kBuiltins) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin;
  }
  // Every listed name resolves back through Get.
  for (const std::string& name : names) {
    EXPECT_NE(OptimizerRegistry::Get(name), nullptr) << name;
  }
}

TEST(OptimizerRegistryTest, UnknownNameIsNullAndGetOrErrorExplains) {
  EXPECT_EQ(OptimizerRegistry::Get("NoSuchOrderer"), nullptr);
  const Result<const JoinOrderer*> lookup =
      OptimizerRegistry::GetOrError("NoSuchOrderer");
  ASSERT_FALSE(lookup.ok());
  EXPECT_EQ(lookup.status().code(), StatusCode::kInvalidArgument);
  // The error names the bad input and lists the alternatives.
  EXPECT_NE(lookup.status().message().find("NoSuchOrderer"),
            std::string::npos);
  EXPECT_NE(lookup.status().message().find("DPccp"), std::string::npos);
}

TEST(OptimizerRegistryTest, RegisterRejectsDuplicatesAndNull) {
  EXPECT_FALSE(
      OptimizerRegistry::Register("DPccp", std::make_unique<IDP1>(5)));
  EXPECT_FALSE(OptimizerRegistry::Register("NullOrderer", nullptr));
  EXPECT_EQ(OptimizerRegistry::Get("NullOrderer"), nullptr);

  // A fresh name sticks and becomes visible through every accessor. The
  // registry is process-wide, so use a name no other test claims.
  ASSERT_TRUE(
      OptimizerRegistry::Register("RegistryTestIDP1k3",
                                  std::make_unique<IDP1>(3)));
  const JoinOrderer* registered = OptimizerRegistry::Get("RegistryTestIDP1k3");
  ASSERT_NE(registered, nullptr);
  EXPECT_EQ(registered->name(), "IDP1");
  const std::vector<std::string> names = OptimizerRegistry::Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "RegistryTestIDP1k3"),
            names.end());
}

/// Conformance sweep: every registered orderer must produce a valid plan
/// on every standard shape, and its cost must sit in the right relation to
/// the cross-product-free optimum:
///   * exact enumerators agree with it,
///   * heuristics may only be worse,
///   * cross-product enumerators may only be better (larger search space).
/// IKKBZ is the one partial algorithm — it requires acyclic graphs and may
/// reject cycles/cliques outright.

enum class CostClass { kExact, kAtLeastOptimal, kAtMostOptimal };

CostClass ClassOf(const std::string& name) {
  if (name == "DPsize" || name == "DPsizeBasic" || name == "DPsub" ||
      name == "DPsubBFS" || name == "DPccp" || name == "DPconv" ||
      name == "TDBasic" || name == "DPhyp" || name == "Adaptive" ||
      name == "DPsizePar" || name == "DPsubPar") {
    return CostClass::kExact;
  }
  if (name == "DPsizeCP" || name == "DPsubCP") {
    return CostClass::kAtMostOptimal;
  }
  return CostClass::kAtLeastOptimal;
}

TEST(OptimizerRegistryTest, ConformanceAcrossShapes) {
  const CoutCostModel cost_model;
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {2, 5, 9}) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      const std::string label =
          std::string(QueryShapeName(shape)) + std::to_string(n);

      Result<OptimizationResult> reference =
          OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
      ASSERT_TRUE(reference.ok()) << label;
      const double optimum = reference->cost;

      for (const std::string& name : OptimizerRegistry::Names()) {
        const JoinOrderer* orderer = OptimizerRegistry::Get(name);
        ASSERT_NE(orderer, nullptr);
        Result<OptimizationResult> result =
            orderer->Optimize(*graph, cost_model);
        if (!result.ok()) {
          // Only IKKBZ's acyclicity precondition excuses a failure.
          EXPECT_EQ(name, "IKKBZ") << label << ": " << name << " failed: "
                                   << result.status().ToString();
          EXPECT_TRUE(shape == QueryShape::kCycle ||
                      shape == QueryShape::kClique)
              << label;
          continue;
        }
        PlanValidationOptions validation;
        validation.forbid_cross_products = ClassOf(name) != CostClass::kAtMostOptimal;
        EXPECT_TRUE(
            ValidatePlan(result->plan, *graph, cost_model, validation).ok())
            << label << "/" << name;
        switch (ClassOf(name)) {
          case CostClass::kExact:
            EXPECT_NEAR(result->cost, optimum, optimum * 1e-9)
                << label << "/" << name;
            break;
          case CostClass::kAtLeastOptimal:
            EXPECT_GE(result->cost, optimum * (1 - 1e-9))
                << label << "/" << name;
            break;
          case CostClass::kAtMostOptimal:
            EXPECT_LE(result->cost, optimum * (1 + 1e-9))
                << label << "/" << name;
            break;
        }
      }
    }
  }
}

/// The exact enumerators must also agree on the enumeration invariants the
/// paper proves: plans_stored = #csg + is moot for ablation keys, but the
/// Ono-Lohman count is algorithm-independent.
TEST(OptimizerRegistryTest, ExactEnumeratorsAgreeOnOnoLohmanCount) {
  const CoutCostModel cost_model;
  Result<QueryGraph> graph = MakeShapeQuery(QueryShape::kCycle, 8);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> reference =
      OptimizerRegistry::Get("DPccp")->Optimize(*graph, cost_model);
  ASSERT_TRUE(reference.ok());
  for (const char* name : {"DPsub", "DPhyp"}) {
    Result<OptimizationResult> result =
        OptimizerRegistry::Get(name)->Optimize(*graph, cost_model);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result->stats.ono_lohman_counter,
              reference->stats.ono_lohman_counter)
        << name;
  }
}

}  // namespace
}  // namespace joinopt
