/// Representation-equivalence suite: pins the OutcomeSignature of every
/// registry orderer on every workload family against goldens captured
/// before the memo's storage layout changed (AoS PlanEntry vs layered
/// struct-of-arrays slabs). The memo representation is an internal
/// detail; these goldens make that claim checkable bit-for-bit — costs,
/// cardinalities, all paper counters, and plans_stored must not move
/// when the layout does.
///
/// On top of the per-orderer signatures the suite asserts:
///  * the parallel orderers are thread-count-invariant (1/2/8 threads
///    produce one signature), and DPsubPar's plan EXPRESSION equals
///    serial DPsub's at every thread count (its workers replay the
///    serial per-mask sweep exactly);
///  * a sparse-forced run (memo_entry_budget = 2^n - 1, one below the
///    dense backend's preallocation) matches its own golden, so both
///    backends are pinned;
///  * for the exact DPs the sparse-forced signature equals the dense
///    one — backend choice must never leak into results.
///
/// Regenerate goldens (e.g. when a workload family or cost model
/// legitimately changes) with:
///   JOINOPT_UPDATE_GOLDENS=1 ./representation_equivalence_test

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "core/outcome.h"
#include "joinopt.h"

#ifndef JOINOPT_GOLDENS_FILE
#error "build must define JOINOPT_GOLDENS_FILE"
#endif

namespace joinopt {
namespace {

struct Family {
  std::string name;
  QueryGraph graph;
};

std::vector<Family> AllFamilies() {
  WorkloadConfig config;
  config.seed = 20060912;
  std::vector<Family> families;
  auto add = [&families](const char* name, Result<QueryGraph> graph) {
    EXPECT_TRUE(graph.ok()) << name << ": " << graph.status().ToString();
    if (graph.ok()) {
      families.push_back({name, *std::move(graph)});
    }
  };
  add("chain-10", MakeChainQuery(10, config));
  add("cycle-9", MakeCycleQuery(9, config));
  add("star-9", MakeStarQuery(9, config));
  add("clique-8", MakeCliqueQuery(8, config));
  add("snowflake-3x2", MakeSnowflakeQuery(3, 2, config));
  add("grid-3x3", MakeGridQuery(3, 3, config));
  add("random-10", MakeRandomConnectedQuery(10, 6, config));
  return families;
}

/// The orderers whose search space is complete: backend choice (dense vs
/// sparse) must not even perturb tie-breaks for these, so their sparse
/// signature is asserted equal to the dense one on top of the goldens.
bool IsExactDP(const std::string& name) {
  return name == "DPsize" || name == "DPsub" || name == "DPccp" ||
         name == "DPconv" || name == "DPhyp" || name == "DPsizePar" ||
         name == "DPsubPar";
}

bool IsParallel(const std::string& name) {
  return name == "DPsizePar" || name == "DPsubPar";
}

struct RunOutcome {
  OutcomeSignature signature;
  std::string expression;  // "<error>" when the run failed.
};

RunOutcome RunOrderer(const std::string& name, const QueryGraph& graph,
                      const CostModel& cost_model,
                      const OptimizeOptions& options) {
  const JoinOrderer* orderer = OptimizerRegistry::Get(name);
  EXPECT_NE(orderer, nullptr) << name;
  OptimizerContext ctx(graph, cost_model, options);
  Result<OptimizationResult> result = orderer->Optimize(ctx);
  RunOutcome outcome;
  outcome.signature = ExtractOutcomeSignature(result, ctx.stats());
  outcome.expression =
      result.ok() ? PlanToExpression(result->plan, graph) : "<error>";
  return outcome;
}

/// One golden line: `key = payload`. The payload renders every signature
/// field (doubles as shortest round-trip text, compared bit-for-bit) and
/// the plan expression for the orderers whose plan SHAPE is pinned
/// (DPsub/DPsubPar — their enumeration order makes the tie-break
/// first-minimal, which no layout change may alter). Other orderers
/// store "-": equal-cost plan shapes are not part of their contract.
std::string FormatPayload(const RunOutcome& outcome, bool pin_expression) {
  const OutcomeSignature& sig = outcome.signature;
  std::ostringstream out;
  out << "status=" << StatusCodeToString(sig.status)
      << " cost=" << FormatDoubleShortest(sig.cost)
      << " card=" << FormatDoubleShortest(sig.cardinality)
      << " inner=" << sig.inner_counter
      << " csg_cmp=" << sig.csg_cmp_pair_counter
      << " create=" << sig.create_join_tree_calls
      << " plans=" << sig.plans_stored
      << " best_effort=" << (sig.best_effort ? 1 : 0)
      << " trigger=" << StatusCodeToString(sig.trigger)
      << " expr=" << (pin_expression ? outcome.expression : "-");
  return out.str();
}

class GoldenFile {
 public:
  GoldenFile() : update_(std::getenv("JOINOPT_UPDATE_GOLDENS") != nullptr) {
    Load();
  }

  void Load() {
    if (update_) {
      return;
    }
    std::ifstream in(JOINOPT_GOLDENS_FILE);
    ASSERT_TRUE(in.good())
        << "missing goldens file " << JOINOPT_GOLDENS_FILE
        << "; regenerate with JOINOPT_UPDATE_GOLDENS=1";
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') {
        continue;
      }
      const size_t sep = line.find(" = ");
      ASSERT_NE(sep, std::string::npos) << "malformed golden line: " << line;
      golden_.emplace(line.substr(0, sep), line.substr(sep + 3));
    }
  }

  /// In compare mode checks `payload` against the stored line; in update
  /// mode records it for Flush.
  void Check(const std::string& key, const std::string& payload) {
    if (update_) {
      lines_.push_back(key + " = " + payload);
      return;
    }
    const auto it = golden_.find(key);
    if (it == golden_.end()) {
      ADD_FAILURE() << "no golden for " << key
                    << "; regenerate with JOINOPT_UPDATE_GOLDENS=1";
      return;
    }
    EXPECT_EQ(payload, it->second) << key;
  }

  void Flush() {
    if (!update_) {
      return;
    }
    std::ofstream out(JOINOPT_GOLDENS_FILE);
    ASSERT_TRUE(out.good()) << "cannot write " << JOINOPT_GOLDENS_FILE;
    out << "# Outcome signatures per orderer x family x backend, captured\n"
           "# before the slab memo layout landed. Regenerate with\n"
           "#   JOINOPT_UPDATE_GOLDENS=1 ./representation_equivalence_test\n";
    for (const std::string& line : lines_) {
      out << line << '\n';
    }
  }

 private:
  bool update_;
  std::map<std::string, std::string> golden_;
  std::vector<std::string> lines_;
};

TEST(RepresentationEquivalenceTest, SignaturesMatchGoldens) {
  GoldenFile goldens;
  const CoutCostModel cost_model;
  const std::vector<Family> families = AllFamilies();
  const std::vector<std::string> orderers = OptimizerRegistry::Names();
  ASSERT_FALSE(orderers.empty());

  for (const Family& family : families) {
    const uint64_t dense_entries = uint64_t{1}
                                   << family.graph.relation_count();
    // DPsub's serial plan expression, for the DPsubPar comparison below.
    std::string dpsub_expression;

    for (const std::string& name : orderers) {
      SCOPED_TRACE(family.name + "/" + name);
      const bool pin_expression = name == "DPsub" || name == "DPsubPar";

      // Dense-eligible run (no budget), threads 1/2/8 for the parallel
      // orderers — one signature for all three or the orderer is not
      // thread-count-invariant.
      OptimizeOptions options;
      options.threads = 1;
      const RunOutcome base =
          RunOrderer(name, family.graph, cost_model, options);
      if (IsParallel(name)) {
        for (const int threads : {2, 8}) {
          options.threads = threads;
          const RunOutcome threaded =
              RunOrderer(name, family.graph, cost_model, options);
          EXPECT_EQ(threaded.signature.DiffAgainst(base.signature), "")
              << name << " at " << threads << " threads";
          if (pin_expression) {
            EXPECT_EQ(threaded.expression, base.expression)
                << name << " at " << threads << " threads";
          }
        }
      }
      goldens.Check(family.name + "/" + name + "/dense",
                    FormatPayload(base, pin_expression));

      if (name == "DPsub") {
        dpsub_expression = base.expression;
      }
      if (name == "DPsubPar") {
        // DPsubPar replays serial DPsub's per-mask sweep exactly, so not
        // just the signature but the plan expression must coincide.
        EXPECT_EQ(base.expression, dpsub_expression);
      }

      // Sparse-forced run: one entry below the dense preallocation makes
      // every table fall back to the hash backend without ever tripping
      // (no orderer populates more than 2^n - 1 sets).
      OptimizeOptions sparse_options;
      sparse_options.threads = 1;
      sparse_options.memo_entry_budget = dense_entries - 1;
      const RunOutcome sparse =
          RunOrderer(name, family.graph, cost_model, sparse_options);
      goldens.Check(family.name + "/" + name + "/sparse",
                    FormatPayload(sparse, pin_expression));
      if (IsExactDP(name)) {
        EXPECT_EQ(sparse.signature.DiffAgainst(base.signature), "")
            << name << " sparse vs dense";
      }
    }
  }
  goldens.Flush();
}

}  // namespace
}  // namespace joinopt
