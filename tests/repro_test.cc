/// Tests for the flight recorder (src/testing/repro.h): exact
/// Write/Parse round-trips (including degenerate statistics that only
/// survive via the StatsCorruptor backdoor), deterministic replay across
/// every registered orderer, and convergence of the delta-debugging
/// minimizer.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "gtest/gtest.h"
#include "joinopt.h"
#include "testing/fault_injection.h"
#include "testing/repro.h"

namespace joinopt {
namespace {

using testing::FaultConfig;
using testing::FaultPoint;
using testing::MakeReproBundle;
using testing::MinimizeBundle;
using testing::MinimizeStats;
using testing::ParseReproBundle;
using testing::ReplayAndCompare;
using testing::ReplayBundle;
using testing::ReproBundle;
using testing::WriteReproBundle;

bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/// A bundle exercising every directive the grammar defines, with
/// statistics chosen to stress the shortest-round-trip formatter and the
/// lenient graph loader: a denormal selectivity, a saturated
/// cardinality, NaN, and infinity.
ReproBundle FullyLoadedBundle() {
  ReproBundle bundle;
  bundle.note = "round-trip fixture; unicode-free free text 42";
  bundle.orderer = "DPsub";
  bundle.cost_model = "bestof";
  bundle.workload_seed = 0xdeadbeefULL;
  bundle.memo_entry_budget = 17;
  bundle.deadline_seconds = 0.001;
  bundle.deadline_ticks = 12;
  bundle.salvage_on_interrupt = true;
  bundle.throwing_trace = true;
  bundle.policy = "DPccp -> salvage -> GOO";
  bundle.fault.seed = 99;
  bundle.fault.seed_horizon = 256;
  bundle.fault.at(FaultPoint::kArenaAlloc) = 5;
  bundle.fault.at(FaultPoint::kTraceSink) = 2;
  bundle.relations = {{"a", 1e300},
                      {"b", std::nan("")},
                      {"c", -std::numeric_limits<double>::infinity()},
                      {"d", 0.1 + 0.2}};  // 0.30000000000000004
  bundle.edges = {{0, 1, 5e-324},  // Denormal: smallest positive double.
                  {1, 2, 1.0},
                  {2, 3, 0.30000000000000004}};
  bundle.has_expected = true;
  bundle.expected.status = StatusCode::kBudgetExceeded;
  bundle.expected.cost = 12345.6789;
  bundle.expected.cardinality = 1e18;
  bundle.expected.inner_counter = 7;
  bundle.expected.csg_cmp_pair_counter = 8;
  bundle.expected.create_join_tree_calls = 9;
  bundle.expected.plans_stored = 10;
  bundle.expected.best_effort = true;
  bundle.expected.trigger = StatusCode::kBudgetExceeded;
  return bundle;
}

TEST(ReproBundleTest, WriteParseRoundTripsEveryField) {
  const ReproBundle bundle = FullyLoadedBundle();
  const std::string text = WriteReproBundle(bundle);
  Result<ReproBundle> parsed = ParseReproBundle(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;

  EXPECT_EQ(parsed->note, bundle.note);
  EXPECT_EQ(parsed->orderer, bundle.orderer);
  EXPECT_EQ(parsed->cost_model, bundle.cost_model);
  EXPECT_EQ(parsed->workload_seed, bundle.workload_seed);
  EXPECT_EQ(parsed->memo_entry_budget, bundle.memo_entry_budget);
  EXPECT_TRUE(SameBits(parsed->deadline_seconds, bundle.deadline_seconds));
  EXPECT_EQ(parsed->deadline_ticks, bundle.deadline_ticks);
  EXPECT_EQ(parsed->salvage_on_interrupt, bundle.salvage_on_interrupt);
  EXPECT_EQ(parsed->throwing_trace, bundle.throwing_trace);
  EXPECT_EQ(parsed->policy, bundle.policy);
  EXPECT_EQ(parsed->fault.seed, bundle.fault.seed);
  EXPECT_EQ(parsed->fault.seed_horizon, bundle.fault.seed_horizon);
  for (int p = 0; p < testing::kFaultPointCount; ++p) {
    EXPECT_EQ(parsed->fault.fire_at[p], bundle.fault.fire_at[p]) << p;
  }
  ASSERT_EQ(parsed->relations.size(), bundle.relations.size());
  for (size_t i = 0; i < bundle.relations.size(); ++i) {
    EXPECT_EQ(parsed->relations[i].name, bundle.relations[i].name);
    EXPECT_TRUE(SameBits(parsed->relations[i].cardinality,
                         bundle.relations[i].cardinality))
        << bundle.relations[i].name;
  }
  ASSERT_EQ(parsed->edges.size(), bundle.edges.size());
  for (size_t e = 0; e < bundle.edges.size(); ++e) {
    EXPECT_EQ(parsed->edges[e].left, bundle.edges[e].left);
    EXPECT_EQ(parsed->edges[e].right, bundle.edges[e].right);
    EXPECT_TRUE(
        SameBits(parsed->edges[e].selectivity, bundle.edges[e].selectivity))
        << e;
  }
  ASSERT_TRUE(parsed->has_expected);
  EXPECT_EQ(parsed->expected, bundle.expected);

  // Serialization is a fixed point: Write(Parse(Write(b))) == Write(b).
  EXPECT_EQ(WriteReproBundle(*parsed), text);
}

TEST(ReproBundleTest, DefaultBundleRoundTripsWithoutOptionalDirectives) {
  ReproBundle bundle;
  bundle.relations = {{"x", 10.0}, {"y", 20.0}};
  bundle.edges = {{0, 1, 0.5}};
  const std::string text = WriteReproBundle(bundle);
  // Optional zero/empty fields are omitted from the text.
  EXPECT_EQ(text.find("option"), std::string::npos) << text;
  EXPECT_EQ(text.find("fault"), std::string::npos) << text;
  EXPECT_EQ(text.find("expect"), std::string::npos) << text;
  EXPECT_EQ(text.find("note"), std::string::npos) << text;
  Result<ReproBundle> parsed = ParseReproBundle(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->has_expected);
  EXPECT_EQ(WriteReproBundle(*parsed), text);
}

TEST(ReproBundleTest, ParseRejectsMalformedInputWithLineNumbers) {
  const struct {
    const char* text;
    const char* expect_in_message;
  } kCases[] = {
      {"rel a 10\n", "magic"},
      {"joinopt-repro v2\n", "version"},
      {"joinopt-repro v1\nrel a\n", "line 2"},
      {"joinopt-repro v1\nrel a ten\n", "line 2"},
      {"joinopt-repro v1\nrel a 10\nrel a 20\n", "line 3"},
      {"joinopt-repro v1\nrel a 10\njoin a ghost 0.5\n", "ghost"},
      {"joinopt-repro v1\nfrobnicate yes\n", "line 2"},
      {"joinopt-repro v1\noption warp_drive on\n", "line 2"},
      {"joinopt-repro v1\nexpect status NotAStatus\n", "line 2"},
      {"joinopt-repro v1\nexpect counters 1 2 3\n", "line 2"},
      {"joinopt-repro v1\nfault warp_core=1\n", "line 2"},
  };
  for (const auto& c : kCases) {
    Result<ReproBundle> parsed = ParseReproBundle(c.text);
    ASSERT_FALSE(parsed.ok()) << c.text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << c.text;
    EXPECT_NE(parsed.status().message().find(c.expect_in_message),
              std::string::npos)
        << c.text << " -> " << parsed.status().ToString();
  }
}

TEST(ReproBundleTest, BundleGraphPlantsDegenerateStatistics) {
  ReproBundle bundle;
  bundle.relations = {{"ok", 100.0}, {"nan_card", std::nan("")},
                      {"zero_card", 0.0}};
  bundle.edges = {{0, 1, 2.0},      // Out-of-range selectivity.
                  {1, 2, 0.25}};
  Result<QueryGraph> graph = testing::BundleGraph(bundle);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_DOUBLE_EQ(graph->cardinality(0), 100.0);
  EXPECT_TRUE(std::isnan(graph->cardinality(1)));
  EXPECT_EQ(graph->cardinality(2), 0.0);
  EXPECT_EQ(graph->edges()[0].selectivity, 2.0);
  EXPECT_DOUBLE_EQ(graph->edges()[1].selectivity, 0.25);
  // Degenerate stats round-trip through text unchanged, too.
  Result<ReproBundle> reparsed = ParseReproBundle(WriteReproBundle(bundle));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(std::isnan(reparsed->relations[1].cardinality));
  EXPECT_EQ(reparsed->edges[0].selectivity, 2.0);
}

TEST(ReproReplayTest, ReplayIsDeterministicAcrossAllOrderers) {
  Result<QueryGraph> graph = MakeCliqueQuery(5);
  ASSERT_TRUE(graph.ok());
  for (const std::string& name : OptimizerRegistry::Names()) {
    ReproBundle bundle =
        MakeReproBundle(*graph, name, "cout", OptimizeOptions(), FaultConfig(),
                        /*throwing_trace=*/false, /*workload_seed=*/0,
                        "determinism sweep");
    Result<OutcomeSignature> first = ReplayBundle(bundle);
    ASSERT_TRUE(first.ok()) << name << ": " << first.status().ToString();
    Result<OutcomeSignature> second = ReplayBundle(bundle);
    ASSERT_TRUE(second.ok()) << name;
    EXPECT_EQ(*first, *second)
        << name << "\n" << first->DiffAgainst(*second);
  }
}

TEST(ReproReplayTest, FaultedRunReplaysBitForBit) {
  Result<QueryGraph> graph = MakeChainQuery(6);
  ASSERT_TRUE(graph.ok());
  FaultConfig fault;
  fault.at(FaultPoint::kArenaAlloc) = 1;
  ReproBundle bundle = MakeReproBundle(
      *graph, "DPccp", "cout", OptimizeOptions(), fault,
      /*throwing_trace=*/false, /*workload_seed=*/0, "faulted replay");

  Result<OutcomeSignature> first = ReplayBundle(bundle);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, StatusCode::kInternal);
  EXPECT_EQ(first->cost, 0.0);

  bundle.expected = *first;
  bundle.has_expected = true;
  // The expectation survives serialization and replays bit-for-bit.
  Result<ReproBundle> reparsed = ParseReproBundle(WriteReproBundle(bundle));
  ASSERT_TRUE(reparsed.ok());
  Result<testing::ReplayVerdict> verdict = ReplayAndCompare(*reparsed);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict->matches) << verdict->divergence;
  EXPECT_EQ(verdict->observed, *first);
}

TEST(ReproReplayTest, DeadlineTicksFireDeterministically) {
  Result<QueryGraph> graph = MakeCliqueQuery(7);
  ASSERT_TRUE(graph.ok());
  ReproBundle bundle = MakeReproBundle(
      *graph, "DPsize", "cout", OptimizeOptions(), FaultConfig(),
      /*throwing_trace=*/false, /*workload_seed=*/0, "tick deadline");
  bundle.deadline_ticks = 9;
  Result<OutcomeSignature> first = ReplayBundle(bundle);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, StatusCode::kBudgetExceeded);
  Result<OutcomeSignature> second = ReplayBundle(bundle);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second) << first->DiffAgainst(*second);
}

TEST(ReproReplayTest, PolicyBundleRoutesThroughDegradationPolicy) {
  Result<QueryGraph> graph = MakeCliqueQuery(6);
  ASSERT_TRUE(graph.ok());
  ReproBundle bundle = MakeReproBundle(
      *graph, "DPccp", "cout", OptimizeOptions(), FaultConfig(),
      /*throwing_trace=*/false, /*workload_seed=*/0, "policy replay");
  bundle.memo_entry_budget = 3;  // Too small for DPccp on a 6-clique.
  // Without a policy the replay observes the budget trip ...
  Result<OutcomeSignature> direct = ReplayBundle(bundle);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(direct->status, StatusCode::kBudgetExceeded);
  // ... with one, the GOO fallback leg rescues the run — proof the
  // bundle dispatched through RunDegradationPolicy, not the orderer.
  bundle.policy = "DPccp -> GOO";
  Result<OutcomeSignature> first = ReplayBundle(bundle);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, StatusCode::kOk);
  Result<OutcomeSignature> second = ReplayBundle(bundle);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second) << first->DiffAgainst(*second);
}

TEST(ReproReplayTest, PartialBundleHasNothingToDivergeFrom) {
  Result<QueryGraph> graph = MakeChainQuery(4);
  ASSERT_TRUE(graph.ok());
  const ReproBundle bundle = MakeReproBundle(
      *graph, "DPccp", "cout", OptimizeOptions(), FaultConfig(),
      /*throwing_trace=*/false, /*workload_seed=*/0, "partial");
  ASSERT_FALSE(bundle.has_expected);
  Result<testing::ReplayVerdict> verdict = ReplayAndCompare(bundle);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_TRUE(verdict->matches);
  EXPECT_TRUE(verdict->divergence.empty());
  EXPECT_EQ(verdict->observed.status, StatusCode::kOk);
}

TEST(ReproReplayTest, UnknownOrdererIsASetupErrorNotADivergence) {
  ReproBundle bundle;
  bundle.orderer = "DPnope";
  bundle.relations = {{"a", 10.0}, {"b", 10.0}};
  bundle.edges = {{0, 1, 0.5}};
  Result<OutcomeSignature> replayed = ReplayBundle(bundle);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReproMinimizeTest, CliqueWithAllocFaultConvergesSmall) {
  Result<QueryGraph> graph = MakeCliqueQuery(12);
  ASSERT_TRUE(graph.ok());
  FaultConfig fault;
  fault.at(FaultPoint::kArenaAlloc) = 1;
  ReproBundle bundle = MakeReproBundle(
      *graph, "DPccp", "cout", OptimizeOptions(), fault,
      /*throwing_trace=*/false, /*workload_seed=*/7, "minimizer fixture");
  Result<OutcomeSignature> baseline = ReplayBundle(bundle);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->status, StatusCode::kInternal);
  bundle.expected = *baseline;
  bundle.has_expected = true;

  MinimizeStats stats;
  Result<ReproBundle> minimized = MinimizeBundle(bundle, &stats);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  // A first-arrival allocation fault needs almost nothing to reproduce:
  // the 12-clique must collapse to a handful of relations (the issue's
  // acceptance bound is <= 6; the expected fixed point is 2).
  EXPECT_LE(minimized->relations.size(), 6u) << stats.relations_dropped;
  EXPECT_GE(minimized->relations.size(), 2u);
  EXPECT_GT(stats.relations_dropped, 0);
  EXPECT_GT(stats.replays, 0);

  // The failure kind is intact and the shrunk bundle replays clean.
  ASSERT_TRUE(minimized->has_expected);
  EXPECT_TRUE(minimized->expected.SameFailureKind(*baseline));
  Result<testing::ReplayVerdict> verdict = ReplayAndCompare(*minimized);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->matches) << verdict->divergence;
}

TEST(ReproMinimizeTest, MinimizedBundleStaysConnected) {
  Result<QueryGraph> graph = MakeCycleQuery(8);
  ASSERT_TRUE(graph.ok());
  FaultConfig fault;
  fault.at(FaultPoint::kTraceSink) = 2;
  ReproBundle bundle = MakeReproBundle(
      *graph, "DPsize", "cout", OptimizeOptions(), fault,
      /*throwing_trace=*/true, /*workload_seed=*/0, "cycle fixture");
  Result<OutcomeSignature> baseline = ReplayBundle(bundle);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->status, StatusCode::kInternal);
  bundle.expected = *baseline;
  bundle.has_expected = true;

  Result<ReproBundle> minimized = MinimizeBundle(bundle);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  Result<QueryGraph> shrunk = testing::BundleGraph(*minimized);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_TRUE(IsConnectedGraph(*shrunk));
  EXPECT_LE(minimized->relations.size(), bundle.relations.size());
}

TEST(ReproMinimizeTest, TwoRelationFloorIsRespected) {
  ReproBundle bundle;
  bundle.relations = {{"a", 100.0}, {"b", 200.0}};
  bundle.edges = {{0, 1, 0.5}};
  bundle.fault.at(FaultPoint::kArenaAlloc) = 1;
  Result<OutcomeSignature> baseline = ReplayBundle(bundle);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->status, StatusCode::kInternal);
  bundle.expected = *baseline;
  bundle.has_expected = true;

  Result<ReproBundle> minimized = MinimizeBundle(bundle);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  EXPECT_EQ(minimized->relations.size(), 2u);
  EXPECT_TRUE(minimized->expected.SameFailureKind(*baseline));
}

TEST(ReproMinimizeTest, StripsIrrelevantOptionsAndFaultPoints) {
  Result<QueryGraph> graph = MakeChainQuery(4);
  ASSERT_TRUE(graph.ok());
  FaultConfig fault;
  fault.at(FaultPoint::kArenaAlloc) = 1;
  // The trace fault never fires (no throwing sink is installed, and the
  // alloc fault trips first), so the minimizer should strip it — along
  // with the workload seed, neither of which changes the failure kind.
  fault.at(FaultPoint::kTraceSink) = 1000;
  ReproBundle bundle = MakeReproBundle(
      *graph, "DPccp", "cout", OptimizeOptions(), fault,
      /*throwing_trace=*/false, /*workload_seed=*/12345, "strip fixture");
  Result<OutcomeSignature> baseline = ReplayBundle(bundle);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->status, StatusCode::kInternal);
  bundle.expected = *baseline;
  bundle.has_expected = true;

  MinimizeStats stats;
  Result<ReproBundle> minimized = MinimizeBundle(bundle, &stats);
  ASSERT_TRUE(minimized.ok()) << minimized.status().ToString();
  EXPECT_EQ(minimized->fault.at(FaultPoint::kTraceSink), 0u);
  EXPECT_EQ(minimized->workload_seed, 0u);
  EXPECT_GT(stats.simplifications, 0);
  // The load-bearing fault point survives.
  EXPECT_EQ(minimized->fault.at(FaultPoint::kArenaAlloc), 1u);
}

}  // namespace
}  // namespace joinopt
