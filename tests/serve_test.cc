/// Tests for the batch optimizer service (serve/service): the hit==miss
/// bit-identity contract across every workload family and both memo
/// backends, admission-control shedding with typed kOverloaded, graceful
/// drain, generation invalidation through the service API, the retry
/// envelope rescuing injected transient faults, and the env-driven
/// configuration path.

#include <cstdint>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "joinopt.h"
#include "serve/service.h"
#include "testing/fault_injection.h"
#include "testing/workloads.h"

namespace joinopt {
namespace serve {
namespace {

using joinopt::testing::DrawWorkloadGraph;

ServiceConfig QuickConfig() {
  ServiceConfig config;
  config.workers = 2;
  config.queue_depth = 64;
  config.cache.capacity = 128;
  config.cache.shards = 2;
  return config;
}

QueryGraph ChainGraph(int n) {
  // A connected chain: the cross-product-free DPs accept it, unlike a
  // bare WithRelations graph (no edges = disconnected).
  return *MakeChainQuery(n, WorkloadConfig{});
}

ServeRequest MakeRequest(const QueryGraph& graph,
                         const std::string& orderer = "DPccp") {
  ServeRequest request;
  request.graph = graph;
  request.orderer = orderer;
  request.threads = 1;
  return request;
}

TEST(ServeCreateTest, RejectsMalformedPolicy) {
  ServiceConfig config = QuickConfig();
  config.policy = "NoSuchOrderer -> GOO";
  auto service = OptimizerService::Create(config);
  EXPECT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeTest, UnknownOrdererFailsTypedWithoutCrashing) {
  auto service = OptimizerService::Create(QuickConfig());
  ASSERT_TRUE(service.ok());
  const QueryGraph graph = *QueryGraph::WithRelations(3, 100.0);
  ServeResponse response =
      (*service)->SubmitAndWait(MakeRequest(graph, "NoSuchOrderer"));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(response.shed);
}

/// The tentpole contract: a cache hit replays the miss bit-for-bit —
/// same plan shape, same cost, same OutcomeSignature (which includes the
/// paper counters of the run that computed the plan). Swept over all
/// seven workload families, and over both memo backends by forcing the
/// sparse PlanTable with a non-power-of-two budget on the second pass.
TEST(ServeTest, CacheHitsAreBitIdenticalToMissesAcrossFamiliesAndBackends) {
  for (const bool sparse : {false, true}) {
    auto service = OptimizerService::Create(QuickConfig());
    ASSERT_TRUE(service.ok());
    for (uint64_t draw = 0; draw < 14; ++draw) {
      Random rng(911 + draw);
      std::string family;
      Result<QueryGraph> graph = DrawWorkloadGraph(rng, &family);
      ASSERT_TRUE(graph.ok()) << family;
      ServeRequest first = MakeRequest(*graph);
      if (sparse) {
        // 2^n - 1 never fits the dense 2^n preallocation, so the memo
        // runs on the sharded sparse backend; big enough to never trip.
        first.memo_entry_budget =
            (uint64_t{1} << graph->relation_count()) - 1;
      }
      ServeRequest second = first;
      const ServeResponse miss = (*service)->SubmitAndWait(std::move(first));
      ASSERT_TRUE(miss.status.ok())
          << family << ": " << miss.status.ToString();
      const ServeResponse hit = (*service)->SubmitAndWait(std::move(second));
      ASSERT_TRUE(hit.status.ok()) << family;
      if (!hit.cache_hit) {
        // A best-effort or fallback first run is legitimately uncached;
        // with no limits armed here, every family completes exactly.
        ADD_FAILURE() << family << " (sparse=" << sparse
                      << "): second run was not a cache hit";
        continue;
      }
      EXPECT_FALSE(miss.cache_hit) << family;
      // Bit-identical outcome: signature covers status, cost,
      // cardinality, counters, and the degradation flags.
      EXPECT_EQ(hit.signature, miss.signature)
          << family << " (sparse=" << sparse << "): "
          << hit.signature.DiffAgainst(miss.signature);
      EXPECT_EQ(hit.cost, miss.cost) << family;
      EXPECT_EQ(hit.cardinality, miss.cardinality) << family;
      EXPECT_EQ(hit.algorithm, miss.algorithm) << family;
      ASSERT_TRUE(miss.plan.has_value());
      ASSERT_TRUE(hit.plan.has_value());
      EXPECT_EQ(PlanToExpression(*hit.plan, *graph),
                PlanToExpression(*miss.plan, *graph))
          << family;
    }
  }
}

TEST(ServeTest, ConcurrentSameQueryResponsesAllAgree) {
  auto service = OptimizerService::Create(QuickConfig());
  ASSERT_TRUE(service.ok());
  Random rng(4242);
  std::string family;
  const Result<QueryGraph> graph = DrawWorkloadGraph(rng, &family);
  ASSERT_TRUE(graph.ok());
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back((*service)->Submit(MakeRequest(*graph)));
  }
  std::vector<ServeResponse> responses;
  for (auto& future : futures) {
    responses.push_back(future.get());
  }
  for (const ServeResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    // Hit or miss, every response must carry the identical outcome.
    EXPECT_EQ(response.signature, responses[0].signature)
        << response.signature.DiffAgainst(responses[0].signature);
    EXPECT_EQ(PlanToExpression(*response.plan, *graph),
              PlanToExpression(*responses[0].plan, *graph));
  }
}

TEST(ServeTest, QueueFullShedsTypedOverloaded) {
  ServiceConfig config = QuickConfig();
  config.workers = 1;
  config.queue_depth = 2;
  auto service = OptimizerService::Create(config);
  ASSERT_TRUE(service.ok());
  // Large clique queries keep the single worker busy long enough for the
  // flood to pile onto the 2-deep queue.
  const Result<QueryGraph> big = MakeCliqueQuery(10, WorkloadConfig{});
  ASSERT_TRUE(big.ok());
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back((*service)->Submit(MakeRequest(*big, "DPsub")));
  }
  int shed = 0;
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    if (response.shed) {
      ++shed;
      EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
      EXPECT_FALSE(response.plan.has_value());
    } else {
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
    }
  }
  EXPECT_GT(shed, 0);
  const ServiceStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.shed_queue_full, static_cast<uint64_t>(shed));
}

TEST(ServeTest, ShutdownDrainsQueuedWorkThenShedsLateSubmits) {
  ServiceConfig config = QuickConfig();
  config.workers = 1;
  auto service = OptimizerService::Create(config);
  ASSERT_TRUE(service.ok());
  const QueryGraph graph = ChainGraph(4);
  ServeRequest request = MakeRequest(graph, "DPsize");
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    ServeRequest copy = request;
    futures.push_back((*service)->Submit(std::move(copy)));
  }
  (*service)->Shutdown(/*drain=*/true);
  // Every accepted request completed with a real answer.
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    EXPECT_FALSE(response.shed);
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  // Post-shutdown submissions shed immediately, typed.
  const ServeResponse late = (*service)->SubmitAndWait(std::move(request));
  EXPECT_TRUE(late.shed);
  EXPECT_EQ(late.status.code(), StatusCode::kOverloaded);
  EXPECT_GT((*service)->Snapshot().shed_shutdown, 0u);
}

TEST(ServeTest, RetryEnvelopeRescuesTransientFault) {
  ServiceConfig config = QuickConfig();
  config.max_retries = 1;
  auto service = OptimizerService::Create(config);
  ASSERT_TRUE(service.ok());
  const QueryGraph graph = ChainGraph(5);
  // The schedule fires once (allocation fault early in the run); the
  // whole-policy retry re-runs clean, so the caller sees an exact plan.
  joinopt::testing::FaultConfig fault;
  fault.at(joinopt::testing::FaultPoint::kArenaAlloc) = 2;
  ServeRequest request = MakeRequest(graph, "DPsizeCP");
  request.faults = fault;
  const ServeResponse response = (*service)->SubmitAndWait(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.signature.best_effort);
  // And with retries off, the same fault surfaces as a typed failure or
  // a salvaged best-effort plan — never a crash or a hang.
  ServiceConfig no_retry = QuickConfig();
  no_retry.max_retries = 0;
  auto strict = OptimizerService::Create(no_retry);
  ASSERT_TRUE(strict.ok());
  ServeRequest again = MakeRequest(graph, "DPsizeCP");
  again.faults = fault;
  const ServeResponse failed = (*strict)->SubmitAndWait(std::move(again));
  if (!failed.status.ok()) {
    EXPECT_EQ(failed.status.code(), StatusCode::kInternal);
  } else {
    EXPECT_TRUE(failed.signature.best_effort);
  }
}

TEST(ServeTest, GenerationBumpInvalidatesServedPlans) {
  auto service = OptimizerService::Create(QuickConfig());
  ASSERT_TRUE(service.ok());
  const QueryGraph graph = ChainGraph(4);
  ServeRequest request = MakeRequest(graph);
  ServeRequest repeat1 = request;
  ServeRequest repeat2 = request;
  const ServeResponse miss = (*service)->SubmitAndWait(std::move(request));
  ASSERT_TRUE(miss.status.ok());
  const uint64_t before = (*service)->generation();
  (*service)->BumpCatalogGeneration();
  EXPECT_EQ((*service)->generation(), before + 1);
  // The first post-bump run re-optimizes (stale entry reclaimed) ...
  const ServeResponse fresh = (*service)->SubmitAndWait(std::move(repeat1));
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.generation, before + 1);
  // ... and re-fills the cache under the new generation.
  const ServeResponse hit = (*service)->SubmitAndWait(std::move(repeat2));
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_GE((*service)->CacheSnapshot().stale, 1u);
}

TEST(ServeTest, BestEffortResultsAreServedButNeverCached) {
  auto service = OptimizerService::Create(QuickConfig());
  ASSERT_TRUE(service.ok());
  const Result<QueryGraph> big = MakeCliqueQuery(9, WorkloadConfig{});
  ASSERT_TRUE(big.ok());
  // A budget far below the clique's memo needs: the single-step salvage
  // policy completes a best-effort plan, which must not enter the cache.
  ServeRequest request = MakeRequest(*big);
  request.memo_entry_budget = 24;
  ServeRequest repeat = request;
  const ServeResponse first = (*service)->SubmitAndWait(std::move(request));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_TRUE(first.signature.best_effort);
  const ServeResponse second = (*service)->SubmitAndWait(std::move(repeat));
  EXPECT_FALSE(second.cache_hit);
  EXPECT_GT((*service)->CacheSnapshot().rejected_uncacheable +
                (*service)->CacheSnapshot().misses,
            0u);
}

TEST(ServeTest, PolicyRequestsUseTheConfiguredLadder) {
  ServiceConfig config = QuickConfig();
  config.policy = "DPsub -> salvage -> GOO";
  auto service = OptimizerService::Create(config);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->config().policy, "DPsub -> salvage -> GOO");
  const QueryGraph graph = ChainGraph(4);
  ServeRequest request;
  request.graph = graph;  // No orderer: the service policy runs.
  request.threads = 1;
  const ServeResponse response = (*service)->SubmitAndWait(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.algorithm, "DPsub");
}

TEST(ServeTest, CacheDisabledStillServesCorrectly) {
  ServiceConfig config = QuickConfig();
  config.cache_enabled = false;
  auto service = OptimizerService::Create(config);
  ASSERT_TRUE(service.ok());
  const QueryGraph graph = ChainGraph(4);
  ServeRequest a = MakeRequest(graph);
  ServeRequest b = MakeRequest(graph);
  const ServeResponse first = (*service)->SubmitAndWait(std::move(a));
  const ServeResponse second = (*service)->SubmitAndWait(std::move(b));
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(first.signature, second.signature);
}

TEST(ServeConfigFromEnvTest, ReadsAndRejectsKnobs) {
  struct ScopedEnv {
    ScopedEnv(const char* name, const char* value) : name_(name) {
      if (value != nullptr) {
        ::setenv(name, value, 1);
      } else {
        ::unsetenv(name);
      }
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char* name_;
  };
  {
    ScopedEnv workers("JOINOPT_SERVE_WORKERS", "3");
    ScopedEnv depth("JOINOPT_QUEUE_DEPTH", "17");
    ScopedEnv mb("JOINOPT_CACHE_MB", "2");
    ScopedEnv shards("JOINOPT_CACHE_SHARDS", "4");
    auto config = ServiceConfigFromEnv();
    ASSERT_TRUE(config.ok()) << config.status().ToString();
    EXPECT_EQ(config->workers, 3);
    EXPECT_EQ(config->queue_depth, 17);
    EXPECT_EQ(config->cache.capacity, 2u * 1024u);
    EXPECT_EQ(config->cache.shards, 4);
    EXPECT_TRUE(config->cache_enabled);
  }
  {
    ScopedEnv mb("JOINOPT_CACHE_MB", "0");
    auto config = ServiceConfigFromEnv();
    ASSERT_TRUE(config.ok());
    EXPECT_FALSE(config->cache_enabled);
  }
  {
    ScopedEnv mb("JOINOPT_CACHE_MB", "lots");
    auto config = ServiceConfigFromEnv();
    ASSERT_FALSE(config.ok());
    EXPECT_NE(config.status().ToString().find("JOINOPT_CACHE_MB"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace serve
}  // namespace joinopt
