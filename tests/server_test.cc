/// Tests for the wire server and client (serve/server, serve/client):
/// loopback lifecycle on an ephemeral port, bit-identity of served
/// responses against the in-process SubmitAndWait path, concurrent
/// clients over one server, connection reuse across calls, typed
/// kUnavailable when no server is listening, typed bind failures, stats
/// accounting, and strict ServerConfigFromEnv parsing (each malformed
/// variable named in the error). POSIX-only, like the transport itself.

#ifndef _WIN32

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "testing/workloads.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace joinopt {
namespace serve {
namespace {

using joinopt::testing::DrawWorkloadGraph;

ServiceConfig LoopbackServiceConfig() {
  ServiceConfig config;
  config.workers = 2;
  config.queue_depth = 32;
  config.cache.capacity = 128;
  config.cache.shards = 2;
  return config;
}

ServeRequest ChainRequest() {
  ServeRequest request;
  EXPECT_TRUE(request.graph.AddRelation(1000.0).ok());
  EXPECT_TRUE(request.graph.AddRelation(200.0).ok());
  EXPECT_TRUE(request.graph.AddRelation(30.0).ok());
  EXPECT_TRUE(request.graph.AddEdge(0, 1, 0.1).ok());
  EXPECT_TRUE(request.graph.AddEdge(1, 2, 0.05).ok());
  request.orderer = "DPccp";
  request.cost_model = "cout";
  request.threads = 1;
  return request;
}

/// Service + server on 127.0.0.1:<ephemeral>, event loop on a
/// background thread.
struct Loopback {
  std::unique_ptr<OptimizerService> service;
  std::unique_ptr<WireServer> server;

  static Loopback Start(WireServerConfig server_config = {}) {
    Loopback loop;
    auto service = OptimizerService::Create(LoopbackServiceConfig());
    EXPECT_TRUE(service.ok());
    loop.service = std::move(*service);
    server_config.listen = {"127.0.0.1", 0};
    auto server = WireServer::Create(server_config, loop.service.get());
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    loop.server = std::move(*server);
    loop.server->Start();
    return loop;
  }

  WireClientConfig ClientConfig(uint64_t seed = 1) const {
    WireClientConfig config;
    config.server = {"127.0.0.1", server->port()};
    config.io_timeout_seconds = 10.0;
    config.seed = seed;
    return config;
  }
};

TEST(WireServerTest, LoopbackResponseIsBitIdenticalToInProcess) {
  Loopback loop = Loopback::Start();
  ASSERT_NE(loop.server->port(), 0);
  WireClient client(loop.ClientConfig());
  const ServeResponse wire = client.Call(ChainRequest());
  ASSERT_TRUE(wire.status.ok()) << wire.status.ToString();
  const ServeResponse local = loop.service->SubmitAndWait(ChainRequest());
  ASSERT_TRUE(local.status.ok());
  // The determinism contract holds across the wire: same signature,
  // cost, cardinality, and plan as the in-process path (the second run
  // is a cache hit of the first, which the signature oracle equates to a
  // fresh run).
  EXPECT_EQ(wire.signature, local.signature);
  EXPECT_EQ(wire.cost, local.cost);
  EXPECT_EQ(wire.cardinality, local.cardinality);
  EXPECT_EQ(wire.algorithm, local.algorithm);
  ASSERT_TRUE(wire.plan.has_value());
  ASSERT_TRUE(local.plan.has_value());
  ASSERT_EQ(wire.plan->nodes().size(), local.plan->nodes().size());
  for (size_t i = 0; i < wire.plan->nodes().size(); ++i) {
    const JoinTreeNode& got = wire.plan->nodes()[i];
    const JoinTreeNode& want = local.plan->nodes()[i];
    EXPECT_EQ(got.relations.mask(), want.relations.mask());
    EXPECT_EQ(got.cardinality, want.cardinality);
    EXPECT_EQ(got.cost, want.cost);
    EXPECT_EQ(got.relation, want.relation);
    EXPECT_EQ(got.left, want.left);
    EXPECT_EQ(got.right, want.right);
  }
}

TEST(WireServerTest, ConnectionPersistsAcrossCalls) {
  Loopback loop = Loopback::Start();
  WireClient client(loop.ClientConfig());
  for (int i = 0; i < 5; ++i) {
    const ServeResponse response = client.Call(ChainRequest());
    ASSERT_TRUE(response.status.ok()) << i << ": "
                                      << response.status.ToString();
    if (i > 0) {
      EXPECT_TRUE(response.cache_hit) << i;
    }
  }
  EXPECT_TRUE(client.connected());
  const WireServer::Stats stats = loop.server->StatsSnapshot();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_GE(stats.responses, 5u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(WireServerTest, ConcurrentClientsAllGetCorrectAnswers) {
  Loopback loop = Loopback::Start();
  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&loop, &failures, c]() {
      WireClient client(loop.ClientConfig(100 + c));
      Random rng(7700 + c);
      for (int i = 0; i < kCallsPerClient; ++i) {
        std::string family;
        Result<QueryGraph> graph = DrawWorkloadGraph(rng, &family);
        if (!graph.ok()) {
          failures[c] = graph.status().ToString();
          return;
        }
        ServeRequest request;
        request.graph = *graph;
        request.orderer = "DPccp";
        request.threads = 1;
        const ServeResponse response = client.Call(request);
        if (!response.status.ok()) {
          failures[c] = response.status.ToString();
          return;
        }
        if (!response.plan.has_value()) {
          failures[c] = "no plan";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
  const WireServer::Stats stats = loop.server->StatsSnapshot();
  EXPECT_GE(stats.accepted, static_cast<uint64_t>(kClients));
  EXPECT_GE(stats.responses,
            static_cast<uint64_t>(kClients * kCallsPerClient));
}

TEST(WireServerTest, StopDrainsAndRunReturns) {
  Loopback loop = Loopback::Start();
  WireClient client(loop.ClientConfig());
  ASSERT_TRUE(client.Call(ChainRequest()).status.ok());
  loop.server->Stop();
  // After the drain the port is released; a fresh call gets a typed
  // kUnavailable, never a hang or a crash.
  WireClientConfig config = loop.ClientConfig();
  config.io_timeout_seconds = 0.5;
  config.max_retries = 1;
  config.retry_backoff_seconds = 0.01;
  WireClient after(config);
  const ServeResponse response = after.Call(ChainRequest());
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
      << response.status.ToString();
}

TEST(WireServerTest, NoServerYieldsTypedUnavailable) {
  // Port 1 on loopback: connect is refused (or times out), and every
  // giving-up path must produce a typed kUnavailable response.
  WireClientConfig config;
  config.server = {"127.0.0.1", 1};
  config.io_timeout_seconds = 0.5;
  config.max_retries = 1;
  config.retry_backoff_seconds = 0.01;
  WireClient client(config);
  const ServeResponse response = client.Call(ChainRequest());
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
      << response.status.ToString();
  EXPECT_FALSE(response.plan.has_value());
}

TEST(WireServerTest, RetryBudgetExhaustionIsTypedAndBounded) {
  // A request deadline far smaller than the configured backoff: the
  // retry loop must clamp every sleep to the remaining budget and give
  // up with a typed kUnavailable once the budget is exhausted
  // pre-connect — never sleep through the caller's deadline or
  // re-encode a zero/negative deadline_s on the wire.
  WireClientConfig config;
  config.server = {"127.0.0.1", 1};
  config.io_timeout_seconds = 0.5;
  config.max_retries = 50;
  config.retry_backoff_seconds = 30.0;
  WireClient client(config);
  ServeRequest request = ChainRequest();
  request.deadline_seconds = 0.2;
  Stopwatch elapsed;
  const ServeResponse response = client.Call(request);
  // Budget 0.2s, sleeps capped at half the remainder: the whole call is
  // bounded by a small multiple of the budget (generous slack for slow
  // CI), nowhere near the 30s base backoff.
  EXPECT_LT(elapsed.ElapsedSeconds(), 5.0);
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
      << response.status.ToString();
  EXPECT_NE(response.status.message().find("exhausted"), std::string::npos)
      << response.status.ToString();
  EXPECT_FALSE(response.plan.has_value());
}

TEST(WireServerTest, HugeRetryCountDoesNotOverflowTheBackoffShift) {
  // 200 retries with a zero backoff base: attempts past 64 used to shift
  // a uint64 by >= 64 (UB, flagged under UBSan). The doubling is now
  // exponent-clamped; the loop must walk all attempts and return typed.
  WireClientConfig config;
  config.server = {"127.0.0.1", 1};
  config.io_timeout_seconds = 0.05;
  config.max_retries = 200;
  config.retry_backoff_seconds = 0.0;
  WireClient client(config);
  const ServeResponse response = client.Call(ChainRequest());
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
      << response.status.ToString();
}

TEST(WireServerTest, UnbindableEndpointIsATypedError) {
  auto service = OptimizerService::Create(LoopbackServiceConfig());
  ASSERT_TRUE(service.ok());
  WireServerConfig config;
  // TEST-NET-3 (RFC 5737): never assigned to a local interface, so the
  // bind fails — with a typed error naming the endpoint, not an abort.
  config.listen = {"203.0.113.1", 9};
  auto server = WireServer::Create(config, service->get());
  ASSERT_FALSE(server.ok());
  EXPECT_FALSE(server.status().message().empty());
}

class ServerEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("JOINOPT_SERVE_LISTEN");
    ::unsetenv("JOINOPT_SERVE_MAX_CONNS");
    ::unsetenv("JOINOPT_SERVE_IO_TIMEOUT_S");
  }
};

TEST_F(ServerEnvTest, DefaultsWhenUnset) {
  Result<WireServerConfig> config = ServerConfigFromEnv();
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->listen.host, "127.0.0.1");
  EXPECT_EQ(config->max_connections, 64);
  EXPECT_EQ(config->io_timeout_seconds, 5.0);
}

TEST_F(ServerEnvTest, WellFormedKnobsApply) {
  ::setenv("JOINOPT_SERVE_LISTEN", "127.0.0.1:19173", 1);
  ::setenv("JOINOPT_SERVE_MAX_CONNS", "7", 1);
  ::setenv("JOINOPT_SERVE_IO_TIMEOUT_S", "2.5", 1);
  Result<WireServerConfig> config = ServerConfigFromEnv();
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->listen.host, "127.0.0.1");
  EXPECT_EQ(config->listen.port, 19173);
  EXPECT_EQ(config->max_connections, 7);
  EXPECT_EQ(config->io_timeout_seconds, 2.5);
}

TEST_F(ServerEnvTest, MalformedKnobsAreRejectedNamingTheVariable) {
  const struct {
    const char* variable;
    const char* value;
  } cases[] = {
      {"JOINOPT_SERVE_LISTEN", "not-an-endpoint"},
      {"JOINOPT_SERVE_LISTEN", "127.0.0.1:notaport"},
      {"JOINOPT_SERVE_MAX_CONNS", "banana"},
      {"JOINOPT_SERVE_MAX_CONNS", "-3"},
      {"JOINOPT_SERVE_IO_TIMEOUT_S", "0"},
      {"JOINOPT_SERVE_IO_TIMEOUT_S", "nope"},
  };
  for (const auto& test : cases) {
    ::setenv(test.variable, test.value, 1);
    Result<WireServerConfig> config = ServerConfigFromEnv();
    ASSERT_FALSE(config.ok()) << test.variable << "=" << test.value;
    EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(config.status().message().find(test.variable),
              std::string::npos)
        << config.status().ToString();
    ::unsetenv(test.variable);
  }
}

}  // namespace
}  // namespace serve
}  // namespace joinopt

#endif  // !_WIN32
