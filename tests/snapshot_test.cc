/// Tests for plan-cache snapshot persistence (serve/snapshot): round-trip
/// bit-identity across every workload family and both memo backends,
/// crash-safe atomic replacement, typed cold starts for missing/corrupt
/// files, Catalog::generation() honoring (mid-snapshot BumpGeneration),
/// and a deterministic mutation sweep (truncation, bit flips, duplicated
/// records, hostile lengths) asserting typed outcomes only — no crash,
/// no poisoned hit.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/outcome.h"
#include "core/policy.h"
#include "joinopt.h"
#include "serve/fingerprint.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "testing/workloads.h"

namespace joinopt {
namespace serve {
namespace {

using joinopt::testing::DrawWorkloadGraph;

std::string TempSnapshotPath(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "joinopt_snapshot_test_" + name + ".snap";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

ServiceConfig SnapshotConfig(const std::string& path) {
  ServiceConfig config;
  config.workers = 2;
  config.queue_depth = 64;
  config.cache.capacity = 256;
  config.cache.shards = 2;
  config.snapshot_path = path;
  return config;
}

ServeRequest MakeRequest(const QueryGraph& graph, bool sparse) {
  ServeRequest request;
  request.graph = graph;
  request.orderer = "DPccp";
  request.threads = 1;
  if (sparse) {
    // 2^n - 1 never fits the dense 2^n preallocation, so the memo runs
    // on the sharded sparse backend; big enough to never trip.
    request.memo_entry_budget = (uint64_t{1} << graph.relation_count()) - 1;
  }
  return request;
}

/// Builds a cache entry the way the service's miss path does — DPccp on
/// the canonical quantized graph — but with a caller-chosen generation
/// stamp, for the generation-semantics tests that need entries outside a
/// live service.
CachedPlan MakeEntry(const QueryGraph& graph, uint64_t generation) {
  auto canonical = CanonicalizeQuery(graph, "DPccp", "cout");
  EXPECT_TRUE(canonical.ok());
  const CoutCostModel cost_model;
  OptimizerContext ctx(canonical->graph, cost_model);
  auto policy = DegradationPolicy::Parse("DPccp");
  EXPECT_TRUE(policy.ok());
  auto result = RunDegradationPolicy(*policy, ctx);
  EXPECT_TRUE(result.ok());
  CachedPlan entry;
  entry.key = canonical->key;
  entry.hash = canonical->hash;
  entry.generation = generation;
  entry.signature = ExtractOutcomeSignature(result, ctx.stats());
  entry.cost = result->cost;
  entry.cardinality = result->cardinality;
  entry.algorithm = result->stats.algorithm;
  entry.recompute_seconds = result->stats.elapsed_seconds;
  entry.plan = result->plan;
  return entry;
}

std::string ReadFileBytes(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) {
    return out;
  }
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// The tentpole round trip: optimize across all seven families on both
/// memo backends, snapshot, restart into a fresh service, and require
/// every replayed query to hit with the ORIGINAL miss's signature, cost,
/// and plan — bit-identical recovery, not approximate recovery.
TEST(SnapshotTest, RoundTripAcrossFamiliesAndBackendsIsBitIdentical) {
  for (const bool sparse : {false, true}) {
    const std::string path = TempSnapshotPath(
        sparse ? "roundtrip_sparse" : "roundtrip_dense");
    std::vector<QueryGraph> graphs;
    std::vector<ServeResponse> misses;
    {
      auto service = OptimizerService::Create(SnapshotConfig(path));
      ASSERT_TRUE(service.ok());
      EXPECT_EQ((*service)->LoadStats().outcome, SnapshotLoad::kNoSnapshot);
      for (uint64_t draw = 0; draw < 14; ++draw) {
        Random rng(1701 + draw);
        std::string family;
        Result<QueryGraph> graph = DrawWorkloadGraph(rng, &family);
        ASSERT_TRUE(graph.ok()) << family;
        ServeResponse miss =
            (*service)->SubmitAndWait(MakeRequest(*graph, sparse));
        ASSERT_TRUE(miss.status.ok())
            << family << ": " << miss.status.ToString();
        ASSERT_FALSE(miss.cache_hit) << family;
        graphs.push_back(*graph);
        misses.push_back(std::move(miss));
      }
      auto saved = (*service)->SaveSnapshotNow();
      ASSERT_TRUE(saved.ok()) << saved.status().ToString();
      EXPECT_EQ(saved->written, misses.size());
      EXPECT_GT(saved->bytes, 0u);
    }
    auto service = OptimizerService::Create(SnapshotConfig(path));
    ASSERT_TRUE(service.ok());
    const SnapshotLoadStats loaded = (*service)->LoadStats();
    EXPECT_EQ(loaded.outcome, SnapshotLoad::kLoaded) << loaded.ToString();
    EXPECT_EQ(loaded.restored, misses.size()) << loaded.ToString();
    EXPECT_EQ(loaded.skipped_corrupt, 0u);
    for (size_t i = 0; i < graphs.size(); ++i) {
      const ServeResponse hit =
          (*service)->SubmitAndWait(MakeRequest(graphs[i], sparse));
      ASSERT_TRUE(hit.status.ok());
      ASSERT_TRUE(hit.cache_hit)
          << "query " << i << " (sparse=" << sparse
          << ") missed after snapshot recovery";
      EXPECT_EQ(hit.signature, misses[i].signature)
          << hit.signature.DiffAgainst(misses[i].signature);
      EXPECT_EQ(hit.cost, misses[i].cost);
      EXPECT_EQ(hit.cardinality, misses[i].cardinality);
      EXPECT_EQ(hit.algorithm, misses[i].algorithm);
      ASSERT_TRUE(hit.plan.has_value());
      EXPECT_EQ(PlanToExpression(*hit.plan, graphs[i]),
                PlanToExpression(*misses[i].plan, graphs[i]));
    }
    std::remove(path.c_str());
  }
}

TEST(SnapshotTest, DrainTimeSnapshotIsWrittenOnShutdown) {
  const std::string path = TempSnapshotPath("drain");
  Random rng(99);
  std::string family;
  const Result<QueryGraph> graph = DrawWorkloadGraph(rng, &family);
  ASSERT_TRUE(graph.ok());
  {
    auto service = OptimizerService::Create(SnapshotConfig(path));
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(
        (*service)->SubmitAndWait(MakeRequest(*graph, false)).status.ok());
    // Destruction drains — the final snapshot must land without an
    // explicit SaveSnapshotNow.
  }
  PlanCache cache(PlanCacheConfig{});
  auto loaded = LoadSnapshot(cache, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->outcome, SnapshotLoad::kLoaded);
  EXPECT_GE(loaded->restored, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsTypedColdStart) {
  PlanCache cache(PlanCacheConfig{});
  auto loaded = LoadSnapshot(cache, TempSnapshotPath("missing"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->outcome, SnapshotLoad::kNoSnapshot);
  EXPECT_EQ(loaded->restored, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SnapshotTest, GarbageAndTruncatedHeadersAreTypedColdStarts) {
  const std::string path = TempSnapshotPath("garbage");
  const std::vector<std::string> cases = {
      std::string("not a snapshot at all"), std::string(""),
      std::string("JOPSNAP"), std::string("JOPSNAP1\x01"),
      std::string(200, '\0')};
  for (const std::string& bytes : cases) {
    WriteFileBytes(path, bytes);
    PlanCache cache(PlanCacheConfig{});
    auto loaded = LoadSnapshot(cache, path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->outcome, SnapshotLoad::kBadHeader)
        << loaded->ToString();
    EXPECT_EQ(loaded->restored, 0u);
    EXPECT_EQ(cache.size(), 0u);
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptyCacheRoundTrips) {
  const std::string path = TempSnapshotPath("empty");
  PlanCache cache(PlanCacheConfig{});
  auto saved = SaveSnapshot(cache, path);
  ASSERT_TRUE(saved.ok());
  EXPECT_EQ(saved->written, 0u);
  PlanCache restored(PlanCacheConfig{});
  auto loaded = LoadSnapshot(restored, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->outcome, SnapshotLoad::kLoaded);
  EXPECT_EQ(loaded->restored, 0u);
  std::remove(path.c_str());
}

/// The satellite fix: a snapshot written before a Catalog statistics
/// refresh must be dropped wholesale when the caller requires the new
/// Catalog::generation() — typed kStale, never silently revalidated.
TEST(SnapshotTest, MidSnapshotBumpGenerationDropsWholesaleAtLoad) {
  const std::string path = TempSnapshotPath("generation");
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("a", 100).ok());
  ASSERT_TRUE(catalog.AddRelation("b", 200).ok());
  ASSERT_TRUE(catalog.AddRelation("c", 300).ok());
  ASSERT_TRUE(catalog.AddJoin("a", "b", 0.1).ok());
  ASSERT_TRUE(catalog.AddJoin("b", "c", 0.05).ok());
  auto graph = catalog.BuildQueryGraph();
  ASSERT_TRUE(graph.ok());
  {
    // The writer stamps the cache from the catalog before inserting, so
    // the snapshot header carries Catalog::generation().
    PlanCache cache(PlanCacheConfig{});
    cache.AdvanceGenerationTo(catalog.generation());
    ASSERT_EQ(cache.Insert(MakeEntry(*graph, catalog.generation())),
              CacheInsert::kInserted);
    auto saved = SaveSnapshot(cache, path);
    ASSERT_TRUE(saved.ok());
    ASSERT_EQ(saved->written, 1u);
    EXPECT_EQ(saved->generation, catalog.generation());
  }
  // Mid-snapshot statistics refresh: the snapshot on disk now predates
  // the catalog.
  catalog.BumpGeneration();
  {
    PlanCache cache(PlanCacheConfig{});
    auto loaded = LoadSnapshot(cache, path, catalog.generation());
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->outcome, SnapshotLoad::kStale) << loaded->ToString();
    EXPECT_EQ(loaded->restored, 0u);
    EXPECT_EQ(cache.size(), 0u) << "stale entries were revalidated";
  }
  // Without the refresh the same file loads.
  {
    PlanCache cache(PlanCacheConfig{});
    auto loaded = LoadSnapshot(cache, path, catalog.generation() - 1);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->outcome, SnapshotLoad::kLoaded);
    EXPECT_EQ(loaded->restored, 1u);
  }
  std::remove(path.c_str());
}

/// Save-side generation hygiene: lazily-unreclaimed stale entries never
/// reach disk, and a snapshot from the past cannot resurrect plans in a
/// cache whose generation already moved on.
TEST(SnapshotTest, StaleEntriesAreFilteredAtSaveAndRefusedAtLoad) {
  const std::string path = TempSnapshotPath("stale");
  Random rng(7);
  std::string family;
  const Result<QueryGraph> old_graph = DrawWorkloadGraph(rng, &family);
  ASSERT_TRUE(old_graph.ok());
  const Result<QueryGraph> new_graph = DrawWorkloadGraph(rng, &family);
  ASSERT_TRUE(new_graph.ok());
  {
    auto service = OptimizerService::Create(SnapshotConfig(path));
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)
                    ->SubmitAndWait(MakeRequest(*old_graph, false))
                    .status.ok());
    (*service)->BumpCatalogGeneration();
    ASSERT_TRUE((*service)
                    ->SubmitAndWait(MakeRequest(*new_graph, false))
                    .status.ok());
    auto saved = (*service)->SaveSnapshotNow();
    ASSERT_TRUE(saved.ok());
    // The pre-bump entry is still resident (lazy reclamation) but must
    // not be serialized.
    EXPECT_EQ(saved->written, 1u) << saved->ToString();
    EXPECT_EQ(saved->skipped_stale, 1u) << saved->ToString();
  }
  // A cache already past the snapshot's generation refuses its records.
  PlanCache ahead(PlanCacheConfig{});
  ahead.BumpGeneration();
  ahead.BumpGeneration();
  auto loaded = LoadSnapshot(ahead, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->outcome, SnapshotLoad::kLoaded);
  EXPECT_EQ(loaded->restored, 0u) << loaded->ToString();
  EXPECT_EQ(loaded->skipped_stale, 1u) << loaded->ToString();
  EXPECT_EQ(ahead.size(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, NewSaveAtomicallyReplacesOldSnapshot) {
  const std::string path = TempSnapshotPath("replace");
  Random rng(12);
  std::string family;
  const Result<QueryGraph> g1 = DrawWorkloadGraph(rng, &family);
  ASSERT_TRUE(g1.ok());
  const Result<QueryGraph> g2 = DrawWorkloadGraph(rng, &family);
  ASSERT_TRUE(g2.ok());
  auto service = OptimizerService::Create(SnapshotConfig(path));
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->SubmitAndWait(MakeRequest(*g1, false)).status.ok());
  ASSERT_TRUE((*service)->SaveSnapshotNow().ok());
  ASSERT_TRUE(
      (*service)->SubmitAndWait(MakeRequest(*g2, false)).status.ok());
  auto saved = (*service)->SaveSnapshotNow();
  ASSERT_TRUE(saved.ok());
  EXPECT_EQ(saved->written, 2u);
  // The write protocol leaves no temp file behind.
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) {
    std::fclose(tmp);
  }
  PlanCache cache(PlanCacheConfig{});
  auto loaded = LoadSnapshot(cache, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->restored, 2u);
  std::remove(path.c_str());
}

/// The mutation sweep: truncations at every boundary, bit flips across
/// the whole file, duplicated record regions, and hostile length fields.
/// Every load must return a TYPED outcome (never a Status error, never a
/// crash), and any entry that survives into the cache must replay its
/// original signature — a corrupted byte can cost warmth, never
/// correctness.
TEST(SnapshotTest, MutationSweepYieldsTypedOutcomesAndNoPoisonedHits) {
  const std::string path = TempSnapshotPath("mutation");
  std::map<std::string, OutcomeSignature> originals;
  {
    auto service = OptimizerService::Create(SnapshotConfig(path));
    ASSERT_TRUE(service.ok());
    for (uint64_t draw = 0; draw < 3; ++draw) {
      Random rng(31 + draw);
      std::string family;
      const Result<QueryGraph> graph = DrawWorkloadGraph(rng, &family);
      ASSERT_TRUE(graph.ok());
      const ServeResponse miss =
          (*service)->SubmitAndWait(MakeRequest(*graph, false));
      ASSERT_TRUE(miss.status.ok());
      auto canonical = CanonicalizeQuery(*graph, "DPccp", "cout");
      ASSERT_TRUE(canonical.ok());
      originals[canonical->key] = miss.signature;
    }
    ASSERT_TRUE((*service)->SaveSnapshotNow().ok());
  }
  const std::string pristine = ReadFileBytes(path);
  ASSERT_GT(pristine.size(), 36u);

  uint64_t corrupt_total = 0;
  const auto check_mutant = [&](const std::string& mutant,
                                const std::string& what) {
    WriteFileBytes(path, mutant);
    PlanCache cache(PlanCacheConfig{});
    auto loaded = LoadSnapshot(cache, path);
    ASSERT_TRUE(loaded.ok()) << what << ": untyped error "
                             << loaded.status().ToString();
    corrupt_total += loaded->skipped_corrupt;
    // Whatever survived must replay the original outcome bit-for-bit.
    for (const auto& [key, signature] : originals) {
      auto found = cache.Lookup(FingerprintHash(key), key);
      if (found.outcome == CacheLookup::kHit) {
        ASSERT_EQ(found.entry->signature, signature)
            << what << ": poisoned hit for key " << key;
      }
    }
  };

  // Truncation at every 9th byte (and the exact header boundary).
  for (size_t len = 0; len <= pristine.size(); len += 9) {
    check_mutant(pristine.substr(0, len),
                 "truncate to " + std::to_string(len));
  }
  check_mutant(pristine.substr(0, 36), "truncate to header");
  // Single-bit flips marching through the file.
  for (size_t offset = 0; offset < pristine.size(); offset += 7) {
    std::string mutant = pristine;
    mutant[offset] =
        static_cast<char>(mutant[offset] ^ (1 << (offset % 8)));
    check_mutant(mutant, "bit flip at " + std::to_string(offset));
  }
  // Duplicated record region: everything after the header, twice.
  check_mutant(pristine + pristine.substr(36), "duplicated records");
  // Hostile length: a 4 GB payload_len right after the header.
  {
    std::string mutant = pristine.substr(0, 36);
    mutant += std::string("\xff\xff\xff\xff", 4);
    mutant += std::string(64, 'A');
    check_mutant(mutant, "hostile payload length");
  }
  // The sweep must actually have exercised the skip path.
  EXPECT_GT(corrupt_total, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, PeriodicSnapshotThreadWritesWithoutShutdown) {
  const std::string path = TempSnapshotPath("periodic");
  ServiceConfig config = SnapshotConfig(path);
  config.snapshot_period_seconds = 0.01;
  auto service = OptimizerService::Create(config);
  ASSERT_TRUE(service.ok());
  Random rng(55);
  std::string family;
  const Result<QueryGraph> graph = DrawWorkloadGraph(rng, &family);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(
      (*service)->SubmitAndWait(MakeRequest(*graph, false)).status.ok());
  // Wait for the background thread to land a snapshot with the entry —
  // bounded, not timed: up to ~5 s of 10 ms probes.
  bool persisted = false;
  for (int i = 0; i < 500 && !persisted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    PlanCache cache(PlanCacheConfig{});
    auto loaded = LoadSnapshot(cache, path);
    ASSERT_TRUE(loaded.ok());
    persisted =
        loaded->outcome == SnapshotLoad::kLoaded && loaded->restored >= 1;
  }
  EXPECT_TRUE(persisted) << "periodic snapshot never appeared";
  std::remove(path.c_str());
}

TEST(SnapshotEnvTest, ServiceConfigParsesSnapshotKnobs) {
  ::setenv("JOINOPT_SERVE_SNAPSHOT_PATH", "/tmp/x.snap", 1);
  ::setenv("JOINOPT_SERVE_SNAPSHOT_PERIOD_S", "2.5", 1);
  auto config = ServiceConfigFromEnv();
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->snapshot_path, "/tmp/x.snap");
  EXPECT_DOUBLE_EQ(config->snapshot_period_seconds, 2.5);
  ::setenv("JOINOPT_SERVE_SNAPSHOT_PERIOD_S", "fast", 1);
  auto malformed = ServiceConfigFromEnv();
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(malformed.status().message().find(
                "JOINOPT_SERVE_SNAPSHOT_PERIOD_S"),
            std::string::npos);
  ::setenv("JOINOPT_SERVE_SNAPSHOT_PERIOD_S", "-1", 1);
  EXPECT_FALSE(ServiceConfigFromEnv().ok());
  ::unsetenv("JOINOPT_SERVE_SNAPSHOT_PATH");
  ::unsetenv("JOINOPT_SERVE_SNAPSHOT_PERIOD_S");
}

}  // namespace
}  // namespace serve
}  // namespace joinopt
