#include "dsl/sql_parser.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "graph/connectivity.h"
#include "util/random.h"

namespace joinopt {
namespace {

Catalog TpchishCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.AddRelation("orders", 1500000).ok());
  EXPECT_TRUE(catalog.AddRelation("customer", 150000).ok());
  EXPECT_TRUE(catalog.AddRelation("nation", 25).ok());
  EXPECT_TRUE(catalog.AddRelation("lineitem", 6000000).ok());
  return catalog;
}

TEST(SqlParserTest, BasicTwoWayJoin) {
  const Catalog catalog = TpchishCatalog();
  Result<QueryGraph> graph = ParseSqlJoinQuery(
      "SELECT * FROM orders, customer WHERE orders.custkey = customer.custkey",
      catalog);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 2);
  EXPECT_EQ(graph->edge_count(), 1);
  EXPECT_EQ(graph->name(0), "orders");
  EXPECT_DOUBLE_EQ(graph->cardinality(0), 1500000.0);
  // Default PK selectivity: 1 / max(cards) = 1 / 1.5e6.
  EXPECT_DOUBLE_EQ(graph->edges()[0].selectivity, 1.0 / 1500000.0);
}

TEST(SqlParserTest, CaseInsensitiveKeywordsAndSemicolon) {
  const Catalog catalog = TpchishCatalog();
  Result<QueryGraph> graph = ParseSqlJoinQuery(
      "select * from orders, customer where orders.k = customer.k;", catalog);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->edge_count(), 1);
}

TEST(SqlParserTest, ChainOfPredicates) {
  const Catalog catalog = TpchishCatalog();
  Result<QueryGraph> graph = ParseSqlJoinQuery(
      "SELECT l.x, o.y FROM lineitem AS l, orders AS o, customer AS c, "
      "nation AS n "
      "WHERE l.orderkey = o.orderkey AND o.custkey = c.custkey "
      "AND c.nationkey = n.nationkey",
      catalog);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 4);
  EXPECT_EQ(graph->edge_count(), 3);
  EXPECT_EQ(graph->name(0), "l");
  EXPECT_TRUE(IsConnectedGraph(*graph));
  // Optimizable end to end.
  Result<OptimizationResult> plan = DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->plan.LeafCount(), 4);
}

TEST(SqlParserTest, SelfJoinViaAliases) {
  const Catalog catalog = TpchishCatalog();
  Result<QueryGraph> graph = ParseSqlJoinQuery(
      "SELECT * FROM customer AS c1, customer AS c2 "
      "WHERE c1.nationkey = c2.nationkey",
      catalog);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 2);
  EXPECT_DOUBLE_EQ(graph->cardinality(0), 150000.0);
  EXPECT_DOUBLE_EQ(graph->cardinality(1), 150000.0);
  EXPECT_EQ(graph->name(0), "c1");
  EXPECT_EQ(graph->name(1), "c2");
}

TEST(SqlParserTest, ImplicitAliasWithoutAs) {
  const Catalog catalog = TpchishCatalog();
  Result<QueryGraph> graph = ParseSqlJoinQuery(
      "SELECT * FROM orders o, customer c WHERE o.k = c.k", catalog);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->name(0), "o");
  EXPECT_EQ(graph->name(1), "c");
}

TEST(SqlParserTest, MultiplePredicatesBetweenSamePairMultiply) {
  const Catalog catalog = TpchishCatalog();
  Result<QueryGraph> graph = ParseSqlJoinQuery(
      "SELECT * FROM orders o, customer c "
      "WHERE o.a = c.a AND o.b = c.b",
      catalog);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->edge_count(), 1);
  const double single = 1.0 / 1500000.0;
  EXPECT_DOUBLE_EQ(graph->edges()[0].selectivity, single * single);
}

TEST(SqlParserTest, NoWhereClauseYieldsEdgelessGraph) {
  const Catalog catalog = TpchishCatalog();
  Result<QueryGraph> graph =
      ParseSqlJoinQuery("SELECT * FROM nation", catalog);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relation_count(), 1);
  EXPECT_EQ(graph->edge_count(), 0);
}

TEST(SqlParserTest, DescriptiveErrors) {
  const Catalog catalog = TpchishCatalog();
  const auto expect_error = [&catalog](std::string_view sql,
                                       std::string_view needle) {
    const Result<QueryGraph> result = ParseSqlJoinQuery(sql, catalog);
    ASSERT_FALSE(result.ok()) << sql;
    EXPECT_NE(result.status().message().find(needle), std::string::npos)
        << sql << " -> " << result.status().ToString();
  };
  expect_error("FROM orders", "must start with SELECT");
  expect_error("SELECT * WHERE a.b = c.d", "missing FROM");
  expect_error("SELECT * FROM ghost", "unknown relation");
  expect_error("SELECT * FROM orders o, customer o WHERE o.a = o.b",
               "duplicate alias");
  expect_error("SELECT * FROM orders, customer WHERE orders.a = ghost.b",
               "unknown alias 'ghost'");
  expect_error("SELECT * FROM orders o, customer c WHERE o.a = o.b",
               "both sides");
  expect_error("SELECT * FROM orders o, customer c WHERE o.a c.b",
               "equality");
  expect_error("SELECT * FROM orders o WHERE o = o", "'.'");
  expect_error("SELECT * FROM orders o; extra", "trailing");
  expect_error("SELECT * FROM orders o WHERE o.a = c.b $", "character");
}

TEST(SqlParserTest, FuzzNeverCrashes) {
  const Catalog catalog = TpchishCatalog();
  Random rng(11);
  static constexpr const char* kTokens[] = {
      "SELECT", "FROM", "WHERE", "AND", "AS",  "orders", "customer",
      "o",      "c",    ",",     ".",   "=",   ";",      "*",
      "x",      "(",    "ghost", "1",   "from"};
  for (int round = 0; round < 3000; ++round) {
    std::string sql;
    const int tokens = 1 + static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < tokens; ++i) {
      sql += kTokens[rng.Uniform(sizeof(kTokens) / sizeof(kTokens[0]))];
      sql += ' ';
    }
    const Result<QueryGraph> result = ParseSqlJoinQuery(sql, catalog);
    (void)result;  // ok or clean error.
  }
}

}  // namespace
}  // namespace joinopt
