#include "cost/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "dsl/parser.h"
#include "exec/executor.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

TEST(MeasureStatisticsTest, RejectsMismatchedDatabase) {
  Result<QueryGraph> graph = MakeChainQuery(3);
  ASSERT_TRUE(graph.ok());
  const Database empty;
  EXPECT_FALSE(MeasureStatistics(*graph, empty).ok());
}

TEST(MeasureStatisticsTest, CardinalitiesAreTrueRowCounts) {
  Result<QueryGraph> graph = ParseQuerySpecToGraph(
      "rel a 1e9\nrel b 50\njoin a b 0.1\n");  // a's card capped by gen.
  ASSERT_TRUE(graph.ok());
  DatabaseGenOptions options;
  options.max_rows = 200;
  Result<Database> database = GenerateDatabase(*graph, options);
  ASSERT_TRUE(database.ok());
  Result<QueryGraph> measured = MeasureStatistics(*graph, *database);
  ASSERT_TRUE(measured.ok());
  EXPECT_DOUBLE_EQ(measured->cardinality(0), 200.0);
  EXPECT_DOUBLE_EQ(measured->cardinality(1), 50.0);
  EXPECT_EQ(measured->name(0), "a");
  EXPECT_EQ(measured->edge_count(), 1);
}

TEST(MeasureStatisticsTest, SelectivityIsExactJoinFraction) {
  Result<QueryGraph> graph =
      ParseQuerySpecToGraph("rel a 100\nrel b 100\njoin a b 0.25\n");
  ASSERT_TRUE(graph.ok());
  Result<Database> database = GenerateDatabase(*graph);
  ASSERT_TRUE(database.ok());
  Result<QueryGraph> measured = MeasureStatistics(*graph, *database);
  ASSERT_TRUE(measured.ok());

  // Recompute the true fraction directly.
  Result<Table> joined =
      HashJoin(database->tables[0], database->tables[1]);
  ASSERT_TRUE(joined.ok());
  const double expected =
      static_cast<double>(joined->row_count()) / (100.0 * 100.0);
  EXPECT_DOUBLE_EQ(measured->edges()[0].selectivity, expected);
  // And it should be in the ballpark of the annotated 0.25 (domain 4).
  EXPECT_GT(expected, 0.1);
  EXPECT_LT(expected, 0.45);
}

TEST(MeasureStatisticsTest, PairEstimatesBecomeExactAfterMeasuring) {
  // After measuring, the independence estimate for any single edge's
  // 2-way join equals the executed row count EXACTLY.
  Result<QueryGraph> graph = MakeChainQuery(4);
  ASSERT_TRUE(graph.ok());
  Result<Database> database = GenerateDatabase(*graph);
  ASSERT_TRUE(database.ok());
  Result<QueryGraph> measured = MeasureStatistics(*graph, *database);
  ASSERT_TRUE(measured.ok());

  for (const JoinEdge& edge : measured->edges()) {
    Result<Table> joined = HashJoin(database->tables[edge.left],
                                    database->tables[edge.right]);
    ASSERT_TRUE(joined.ok());
    const double estimate = measured->cardinality(edge.left) *
                            measured->cardinality(edge.right) *
                            edge.selectivity;
    EXPECT_NEAR(estimate, static_cast<double>(joined->row_count()), 1e-6);
  }
}

TEST(MeasureStatisticsTest, EmptyJoinClampsToPositiveSelectivity) {
  // Force a guaranteed-empty join: two single-row tables with different
  // attribute values. Build the database by hand.
  Result<QueryGraph> graph =
      ParseQuerySpecToGraph("rel a 1\nrel b 1\njoin a b 0.5\n");
  ASSERT_TRUE(graph.ok());
  Database database;
  Result<Table> a = Table::WithColumns({"id_0", "j_0_1"});
  Result<Table> b = Table::WithColumns({"j_0_1", "id_1"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->AppendRow({0, 1});
  b->AppendRow({2, 0});
  database.tables.push_back(std::move(*a));
  database.tables.push_back(std::move(*b));

  Result<QueryGraph> measured = MeasureStatistics(*graph, database);
  ASSERT_TRUE(measured.ok());
  EXPECT_GT(measured->edges()[0].selectivity, 0.0);
  EXPECT_LE(measured->edges()[0].selectivity, 1.0);
}

TEST(MeasureStatisticsTest, ReoptimizingWithMeasuredStatsIsOptimizable) {
  WorkloadConfig config;
  config.seed = 9;
  config.min_cardinality = 20;
  config.max_cardinality = 200;
  config.min_selectivity = 0.02;
  config.max_selectivity = 0.3;
  Result<QueryGraph> graph = MakeRandomConnectedQuery(6, 3, config);
  ASSERT_TRUE(graph.ok());
  Result<Database> database = GenerateDatabase(*graph);
  ASSERT_TRUE(database.ok());
  Result<QueryGraph> measured = MeasureStatistics(*graph, *database);
  ASSERT_TRUE(measured.ok());
  Result<OptimizationResult> result =
      DPccp().Optimize(*measured, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->cost, 0.0);
}

}  // namespace
}  // namespace joinopt
