#include "util/status.h"

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpers) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::BudgetExceeded("x").code(), StatusCode::kBudgetExceeded);
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, BudgetExceededRoundTrips) {
  const Status s = Status::BudgetExceeded("memo-entry budget of 64 exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(),
            "BudgetExceeded: memo-entry budget of 64 exceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kBudgetExceeded),
            "BudgetExceeded");
}

TEST(StatusTest, MessagePreserved) {
  const Status s = Status::NotFound("no plan for {1, 2}");
  EXPECT_EQ(s.message(), "no plan for {1, 2}");
  EXPECT_EQ(s.ToString(), "NotFound: no plan for {1, 2}");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

Status FailsWhenNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status Caller(int x) {
  JOINOPT_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  const Status failed = Caller(-1);
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(failed.message(), "negative");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MoveOnlyType) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  const std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

}  // namespace
}  // namespace joinopt
