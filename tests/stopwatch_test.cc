#include "util/stopwatch.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

// Prevents the busy loops below from being optimized away.
volatile double benchmark_sink_ = 0;

TEST(StopwatchTest, ElapsedIsMonotonic) {
  const Stopwatch stopwatch;
  const int64_t first = stopwatch.ElapsedNanos();
  EXPECT_GE(first, 0);
  int64_t previous = first;
  for (int i = 0; i < 100; ++i) {
    const int64_t now = stopwatch.ElapsedNanos();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(StopwatchTest, SecondsMatchNanos) {
  const Stopwatch stopwatch;
  // Burn a little time.
  double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink += i;
  }
  benchmark_sink_ = sink;
  const double seconds = stopwatch.ElapsedSeconds();
  const int64_t nanos = stopwatch.ElapsedNanos();
  EXPECT_GT(nanos, 0);
  EXPECT_LE(seconds, static_cast<double>(nanos) * 1e-9 + 1e-6);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch stopwatch;
  double sink = 0;
  for (int i = 0; i < 1000000; ++i) {
    sink += i;
  }
  benchmark_sink_ = sink;
  const int64_t before = stopwatch.ElapsedNanos();
  stopwatch.Restart();
  const int64_t after = stopwatch.ElapsedNanos();
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace joinopt
