#include "bitset/subset_iterator.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "bitset/node_set.h"

namespace joinopt {
namespace {

std::vector<NodeSet> AllSubsets(NodeSet superset) {
  std::vector<NodeSet> result;
  for (SubsetIterator it(superset); !it.Done(); it.Next()) {
    result.push_back(it.Current());
  }
  return result;
}

std::vector<NodeSet> ProperSubsets(NodeSet superset) {
  std::vector<NodeSet> result;
  for (ProperSubsetIterator it(superset); !it.Done(); it.Next()) {
    result.push_back(it.Current());
  }
  return result;
}

TEST(SubsetIteratorTest, EmptySupersetYieldsNothing) {
  EXPECT_TRUE(AllSubsets(NodeSet()).empty());
}

TEST(SubsetIteratorTest, SingletonYieldsItself) {
  const NodeSet s = NodeSet::Singleton(3);
  EXPECT_EQ(AllSubsets(s), std::vector<NodeSet>{s});
}

TEST(SubsetIteratorTest, TwoElementSet) {
  const NodeSet s = NodeSet::Of({1, 4});
  EXPECT_EQ(AllSubsets(s),
            (std::vector<NodeSet>{NodeSet::Of({1}), NodeSet::Of({4}),
                                  NodeSet::Of({1, 4})}));
}

TEST(SubsetIteratorTest, CountIsTwoToTheKMinusOne) {
  const NodeSet s = NodeSet::Of({0, 2, 5, 9, 13});
  EXPECT_EQ(AllSubsets(s).size(), 31u);  // 2^5 - 1 non-empty subsets.
}

TEST(SubsetIteratorTest, AllResultsAreDistinctNonEmptySubsets) {
  const NodeSet s = NodeSet::Of({1, 3, 4, 8});
  std::set<uint64_t> seen;
  for (const NodeSet subset : AllSubsets(s)) {
    EXPECT_FALSE(subset.empty());
    EXPECT_TRUE(subset.IsSubsetOf(s));
    EXPECT_TRUE(seen.insert(subset.mask()).second) << "duplicate subset";
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(SubsetIteratorTest, AscendingMaskOrder) {
  // Ascending numeric order is the DP-validity property: subsets come
  // before supersets.
  const NodeSet s = NodeSet::Of({0, 3, 6, 7});
  uint64_t previous = 0;
  for (const NodeSet subset : AllSubsets(s)) {
    EXPECT_GT(subset.mask(), previous);
    previous = subset.mask();
  }
}

TEST(SubsetIteratorTest, LastSubsetIsTheSupersetItself) {
  const NodeSet s = NodeSet::Of({2, 4, 11});
  EXPECT_EQ(AllSubsets(s).back(), s);
}

TEST(SubsetIteratorTest, HandlesHighBits) {
  const NodeSet s = NodeSet::Of({62, 63});
  EXPECT_EQ(AllSubsets(s),
            (std::vector<NodeSet>{NodeSet::Of({62}), NodeSet::Of({63}),
                                  NodeSet::Of({62, 63})}));
}

TEST(ProperSubsetIteratorTest, EmptyYieldsNothing) {
  EXPECT_TRUE(ProperSubsets(NodeSet()).empty());
}

TEST(ProperSubsetIteratorTest, SingletonYieldsNothing) {
  EXPECT_TRUE(ProperSubsets(NodeSet::Singleton(7)).empty());
}

TEST(ProperSubsetIteratorTest, ExcludesSupersetItself) {
  const NodeSet s = NodeSet::Of({1, 2, 6});
  const std::vector<NodeSet> subsets = ProperSubsets(s);
  EXPECT_EQ(subsets.size(), 6u);  // 2^3 - 2: DPsub's iteration count.
  for (const NodeSet subset : subsets) {
    EXPECT_NE(subset, s);
    EXPECT_FALSE(subset.empty());
    EXPECT_TRUE(subset.IsSubsetOf(s));
  }
}

TEST(ProperSubsetIteratorTest, ComplementPairingCoversEverySplit) {
  // Every iteration defines the split (S1, S \ S1); together with the
  // complement each unordered split must appear exactly twice.
  const NodeSet s = NodeSet::Of({0, 1, 4, 9});
  std::multiset<uint64_t> splits;
  for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
    const NodeSet s1 = it.Current();
    const NodeSet s2 = s - s1;
    splits.insert(std::min(s1.mask(), s2.mask()));
  }
  EXPECT_EQ(splits.size(), 14u);
  for (const uint64_t key : splits) {
    EXPECT_EQ(splits.count(key), 2u);
  }
}

TEST(ProperSubsetIteratorTest, MatchesDPsubIterationCountFormula) {
  for (int k = 2; k <= 10; ++k) {
    const NodeSet s = NodeSet::Prefix(k);
    EXPECT_EQ(ProperSubsets(s).size(), (uint64_t{1} << k) - 2) << k;
  }
}

}  // namespace
}  // namespace joinopt
