#include "exec/table.h"

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(TableTest, WithColumnsValidation) {
  EXPECT_TRUE(Table::WithColumns({"a", "b"}).ok());
  EXPECT_FALSE(Table::WithColumns({"a", "a"}).ok());
  EXPECT_FALSE(Table::WithColumns({""}).ok());
  EXPECT_TRUE(Table::WithColumns({}).ok());
}

TEST(TableTest, AppendAndAccess) {
  Result<Table> table = Table::WithColumns({"x", "y"});
  ASSERT_TRUE(table.ok());
  table->AppendRow({1, 10});
  table->AppendRow({2, 20});
  EXPECT_EQ(table->row_count(), 2);
  EXPECT_EQ(table->column_count(), 2);
  EXPECT_EQ(table->at(0, 0), 1);
  EXPECT_EQ(table->at(1, 1), 20);
  EXPECT_EQ(table->ColumnIndex("y"), 1);
  EXPECT_EQ(table->ColumnIndex("z"), -1);
}

TEST(TableTest, CanonicalRowsSortsRowsAndColumns) {
  // Same logical content with different column order and row order must
  // canonicalize identically.
  Result<Table> a = Table::WithColumns({"b", "a"});
  ASSERT_TRUE(a.ok());
  a->AppendRow({2, 1});  // (b=2, a=1)
  a->AppendRow({4, 3});

  Result<Table> b = Table::WithColumns({"a", "b"});
  ASSERT_TRUE(b.ok());
  b->AppendRow({3, 4});
  b->AppendRow({1, 2});

  EXPECT_EQ(a->CanonicalRows(), b->CanonicalRows());
}

TEST(TableTest, CanonicalRowsDistinguishesContent) {
  Result<Table> a = Table::WithColumns({"a"});
  Result<Table> b = Table::WithColumns({"a"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->AppendRow({1});
  b->AppendRow({2});
  EXPECT_NE(a->CanonicalRows(), b->CanonicalRows());
}

TEST(TableTest, MutableColumnBulkFill) {
  Result<Table> table = Table::WithColumns({"v"});
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 5; ++i) {
    table->mutable_column(0).push_back(i * i);
  }
  table->set_row_count(5);
  EXPECT_EQ(table->row_count(), 5);
  EXPECT_EQ(table->at(3, 0), 9);
}

}  // namespace
}  // namespace joinopt
