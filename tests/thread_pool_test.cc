#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace joinopt {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr uint64_t kTasks = 10000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.Run(kTasks, [&](uint64_t task, int /*worker*/) {
    hits[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t t = 0; t < kTasks; ++t) {
    ASSERT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(ThreadPoolTest, WorkerIndicesStayInRange) {
  ThreadPool pool(3);
  std::atomic<int> min_worker{1 << 30};
  std::atomic<int> max_worker{-1};
  pool.Run(5000, [&](uint64_t /*task*/, int worker) {
    int seen = min_worker.load(std::memory_order_relaxed);
    while (worker < seen &&
           !min_worker.compare_exchange_weak(seen, worker)) {
    }
    seen = max_worker.load(std::memory_order_relaxed);
    while (worker > seen &&
           !max_worker.compare_exchange_weak(seen, worker)) {
    }
  });
  EXPECT_GE(min_worker.load(), 0);
  EXPECT_LT(max_worker.load(), pool.thread_count());
  // The coordinator participates, so slot 0 always runs something.
  EXPECT_EQ(min_worker.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsEverythingOnCoordinator) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<uint64_t> done{0};
  bool off_coordinator = false;
  pool.Run(100, [&](uint64_t /*task*/, int worker) {
    if (worker != 0) {
      off_coordinator = true;
    }
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 100u);
  EXPECT_FALSE(off_coordinator);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.Run(batch * 37, [&](uint64_t /*task*/, int /*worker*/) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  uint64_t expected = 0;
  for (int batch = 0; batch < 20; ++batch) {
    expected += static_cast<uint64_t>(batch) * 37;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPoolTest, EmptyBatchReturnsWithoutCallingFn) {
  ThreadPool pool(2);
  bool called = false;
  pool.Run(0, [&](uint64_t /*task*/, int /*worker*/) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NonPositiveThreadCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  ThreadPool negative(-7);
  EXPECT_EQ(negative.thread_count(), 1);
}

TEST(ThreadPoolTest, ResolveThreadCountClamps) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(5), 5);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(256), 256);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1000), 256);
  // 0 = auto: whatever the machine reports, clamped into range.
  const int resolved = ThreadPool::ResolveThreadCount(0);
  EXPECT_GE(resolved, 1);
  EXPECT_LE(resolved, 256);
  EXPECT_GE(ThreadPool::ResolveThreadCount(-1), 1);
}

}  // namespace
}  // namespace joinopt
