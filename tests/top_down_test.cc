#include "core/top_down.h"

#include <gtest/gtest.h>

#include "core/dpccp.h"
#include "cost/cost_model.h"
#include "graph/generators.h"
#include "plan/plan_validator.h"

namespace joinopt {
namespace {

TEST(TDBasicTest, RejectsBadInput) {
  EXPECT_FALSE(TDBasic().Optimize(QueryGraph(), CoutCostModel()).ok());
  Result<QueryGraph> disconnected = QueryGraph::WithRelations(3);
  ASSERT_TRUE(disconnected.ok());
  ASSERT_TRUE(disconnected->AddEdge(0, 1).ok());
  EXPECT_FALSE(TDBasic().Optimize(*disconnected, CoutCostModel()).ok());
  Result<QueryGraph> huge = MakeChainQuery(41);
  ASSERT_TRUE(huge.ok());
  EXPECT_FALSE(TDBasic().Optimize(*huge, CoutCostModel()).ok());
}

TEST(TDBasicTest, SingleRelation) {
  Result<QueryGraph> graph = MakeChainQuery(1);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> result =
      TDBasic().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
}

TEST(TDBasicTest, MatchesBottomUpOnAllShapes) {
  // Top-down with memoization prices exactly the csg-cmp-pairs, so both
  // the optimum AND the surviving-pair counter must equal DPccp's.
  const TDBasic top_down;
  const DPccp bottom_up;
  const CoutCostModel cout_model;
  const HashJoinCostModel hash_model(2.0, 1.0);
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {2, 5, 8, 11}) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      for (const CostModel* model :
           {static_cast<const CostModel*>(&cout_model),
            static_cast<const CostModel*>(&hash_model)}) {
        Result<OptimizationResult> td = top_down.Optimize(*graph, *model);
        Result<OptimizationResult> bu = bottom_up.Optimize(*graph, *model);
        ASSERT_TRUE(td.ok()) << QueryShapeName(shape) << n;
        ASSERT_TRUE(bu.ok());
        EXPECT_NEAR(td->cost / bu->cost, 1.0, 1e-9)
            << QueryShapeName(shape) << n;
        EXPECT_EQ(td->stats.ono_lohman_counter, bu->stats.ono_lohman_counter)
            << QueryShapeName(shape) << n;
        EXPECT_TRUE(ValidatePlan(td->plan, *graph, *model).ok());
      }
    }
  }
}

TEST(TDBasicTest, MatchesBottomUpOnRandomGraphs) {
  const TDBasic top_down;
  const DPccp bottom_up;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(9, 5, config);
    ASSERT_TRUE(graph.ok());
    Result<OptimizationResult> td =
        top_down.Optimize(*graph, CoutCostModel());
    Result<OptimizationResult> bu =
        bottom_up.Optimize(*graph, CoutCostModel());
    ASSERT_TRUE(td.ok());
    ASSERT_TRUE(bu.ok());
    EXPECT_NEAR(td->cost / bu->cost, 1.0, 1e-9) << seed;
    EXPECT_EQ(td->stats.ono_lohman_counter, bu->stats.ono_lohman_counter)
        << seed;
    EXPECT_EQ(td->stats.plans_stored, bu->stats.plans_stored) << seed;
  }
}

TEST(TDBasicTest, InnerCounterHasDPsubProfile) {
  // TDBasic's split generate-and-test costs ~2^|S| per memoized set —
  // far above the #ccp bound on sparse graphs, like DPsub.
  Result<QueryGraph> graph = MakeChainQuery(12);
  ASSERT_TRUE(graph.ok());
  Result<OptimizationResult> td = TDBasic().Optimize(*graph, CoutCostModel());
  Result<OptimizationResult> bu = DPccp().Optimize(*graph, CoutCostModel());
  ASSERT_TRUE(td.ok());
  ASSERT_TRUE(bu.ok());
  EXPECT_GT(td->stats.inner_counter, 10 * bu->stats.inner_counter);
}

}  // namespace
}  // namespace joinopt
