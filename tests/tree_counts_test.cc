#include "analytics/tree_counts.h"

#include <gtest/gtest.h>

#include "bitset/subset_iterator.h"
#include "graph/connectivity.h"
#include "graph/generators.h"

namespace joinopt {
namespace {

TEST(TreeCountsTest, TinyCases) {
  Result<QueryGraph> single = MakeChainQuery(1);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(CountJoinTrees(*single), 1u);
  EXPECT_EQ(CountJoinTreeShapes(*single), 1u);

  Result<QueryGraph> pair = MakeChainQuery(2);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(CountJoinTrees(*pair), 2u);   // a⋈b and b⋈a.
  EXPECT_EQ(CountJoinTreeShapes(*pair), 1u);
}

TEST(TreeCountsTest, ThreeChainByHand) {
  // Splits of {a,b,c}: (a | bc) and (ab | c). Ordered: 2·(1·2)+2·(2·1)=8;
  // shapes: 1+1 = 2 = Catalan(2).
  Result<QueryGraph> chain = MakeChainQuery(3);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(CountJoinTrees(*chain), 8u);
  EXPECT_EQ(CountJoinTreeShapes(*chain), 2u);
}

TEST(TreeCountsTest, ChainsMatchClosedForm) {
  for (int n = 1; n <= 14; ++n) {
    Result<QueryGraph> chain = MakeChainQuery(n);
    ASSERT_TRUE(chain.ok());
    EXPECT_EQ(CountJoinTrees(*chain), ChainJoinTreeCountClosedForm(n)) << n;
  }
  // Spot values: Catalan(4)·2^4 = 14·16 = 224 at n = 5.
  EXPECT_EQ(ChainJoinTreeCountClosedForm(5), 224u);
}

TEST(TreeCountsTest, OrderedIsShapesTimesTwoPerJoin) {
  // Every shape yields exactly 2^{n-1} ordered trees (one flip per join).
  for (const QueryShape shape :
       {QueryShape::kChain, QueryShape::kCycle, QueryShape::kStar,
        QueryShape::kClique}) {
    for (const int n : {3, 5, 8}) {
      Result<QueryGraph> graph = MakeShapeQuery(shape, n);
      ASSERT_TRUE(graph.ok());
      const uint64_t shapes = CountJoinTreeShapes(*graph);
      const uint64_t ordered = CountJoinTrees(*graph);
      EXPECT_EQ(ordered, shapes << (n - 1))
          << QueryShapeName(shape) << n;
    }
  }
}

TEST(TreeCountsTest, StarTreesAreLeftDeepPermutations) {
  // In a star every cross-product-free tree adds one leaf at a time (no
  // two leaves are connected), so the shapes are exactly the (n-1)!
  // orderings of the leaves around the hub... divided by nothing — each
  // permutation of leaf attachments gives a distinct shape.
  Result<QueryGraph> star = MakeStarQuery(5);
  ASSERT_TRUE(star.ok());
  // shapes = 4! = 24; ordered = 24 · 2^4 = 384.
  EXPECT_EQ(CountJoinTreeShapes(*star), 24u);
  EXPECT_EQ(CountJoinTrees(*star), 384u);
}

TEST(TreeCountsTest, DenserGraphsHaveMoreTrees) {
  Result<QueryGraph> chain = MakeChainQuery(8);
  Result<QueryGraph> cycle = MakeCycleQuery(8);
  Result<QueryGraph> clique = MakeCliqueQuery(8);
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(cycle.ok());
  ASSERT_TRUE(clique.ok());
  const uint64_t chain_trees = CountJoinTrees(*chain);
  const uint64_t cycle_trees = CountJoinTrees(*cycle);
  const uint64_t clique_trees = CountJoinTrees(*clique);
  EXPECT_LT(chain_trees, cycle_trees);
  EXPECT_LT(cycle_trees, clique_trees);
}

TEST(TreeCountsTest, CountMatchesExplicitEnumerationOnRandomGraphs) {
  // Oracle: count trees by explicit recursive enumeration over splits.
  struct Oracle {
    const QueryGraph& graph;
    uint64_t Count(NodeSet s) {
      if (s.count() == 1) return 1;
      uint64_t total = 0;
      for (ProperSubsetIterator it(s); !it.Done(); it.Next()) {
        const NodeSet s1 = it.Current();
        const NodeSet s2 = s - s1;  // Ordered split: each direction once.
        if (!IsConnectedSet(graph, s1) || !IsConnectedSet(graph, s2)) {
          continue;
        }
        if (!graph.AreConnected(s1, s2)) continue;
        total += Count(s1) * Count(s2);
      }
      return total;
    }
  };
  for (const uint64_t seed : {1u, 2u, 3u}) {
    WorkloadConfig config;
    config.seed = seed;
    Result<QueryGraph> graph = MakeRandomConnectedQuery(7, 3, config);
    ASSERT_TRUE(graph.ok());
    Oracle oracle{*graph};
    EXPECT_EQ(CountJoinTrees(*graph), oracle.Count(graph->AllRelations()))
        << seed;
  }
}

}  // namespace
}  // namespace joinopt
