/// Tests for the wire protocol codec (serve/wire): frame round-trip and
/// streaming decode, every corruption class with typed outcomes (bad
/// magic, unknown type, hostile length, CRC bit flips, truncation),
/// consumed-bytes accounting over multi-frame buffers, and the payload
/// grammars — request/response round-trip bit-identity (including
/// extreme doubles), strict rejection of malformed payloads with
/// line-anchored kInvalidArgument, the no-wire-spelling rule for fault
/// schedules, and structural revalidation of crafted plans.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/service.h"
#include "serve/wire.h"
#include "testing/fault_injection.h"
#include "testing/workloads.h"
#include "util/random.h"
#include "util/status.h"

namespace joinopt {
namespace serve {
namespace {

using joinopt::testing::DrawWorkloadGraph;

QueryGraph SmallChain() {
  QueryGraph graph;
  EXPECT_TRUE(graph.AddRelation(1000.0).ok());
  EXPECT_TRUE(graph.AddRelation(200.0).ok());
  EXPECT_TRUE(graph.AddRelation(30.0).ok());
  EXPECT_TRUE(graph.AddEdge(0, 1, 0.1).ok());
  EXPECT_TRUE(graph.AddEdge(1, 2, 0.05).ok());
  return graph;
}

ServeRequest ChainRequest() {
  ServeRequest request;
  request.graph = SmallChain();
  request.orderer = "DPccp";
  request.cost_model = "cout";
  request.threads = 1;
  return request;
}

/// A real served response (plan, signature, counters) for the response
/// codec tests.
ServeResponse ServedResponse() {
  ServiceConfig config;
  config.workers = 1;
  config.queue_depth = 8;
  auto service = OptimizerService::Create(config);
  EXPECT_TRUE(service.ok());
  ServeResponse response = (*service)->SubmitAndWait(ChainRequest());
  EXPECT_TRUE(response.status.ok());
  EXPECT_TRUE(response.plan.has_value());
  return response;
}

TEST(WireFrameTest, RoundTripBothTypesAndPayloadSizes) {
  std::vector<std::string> payloads = {"", "x", "joinopt-wire v1\nrequest\n"};
  Random rng(91);
  std::string big;
  for (int i = 0; i < 4096; ++i) {
    big.push_back(static_cast<char>(rng.Uniform(256)));
  }
  payloads.push_back(big);
  for (const FrameType type : {FrameType::kRequest, FrameType::kResponse}) {
    for (const std::string& payload : payloads) {
      const std::string frame = EncodeFrame(type, payload);
      ASSERT_EQ(frame.size(), kWireFrameOverheadBytes + payload.size());
      FrameDecodeResult decoded = DecodeFrame(frame);
      ASSERT_EQ(decoded.outcome, FrameDecode::kFrame);
      EXPECT_EQ(decoded.frame.type, type);
      EXPECT_EQ(decoded.frame.payload, payload);
      EXPECT_EQ(decoded.consumed, frame.size());
    }
  }
}

TEST(WireFrameTest, StreamingDecodeReportsIncompleteUntilWhole) {
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequestPayload(ChainRequest()));
  for (size_t len = 0; len < frame.size(); ++len) {
    FrameDecodeResult decoded = DecodeFrame(std::string_view(frame).substr(
        0, len));
    ASSERT_EQ(decoded.outcome, FrameDecode::kIncomplete)
        << "prefix length " << len;
  }
  EXPECT_EQ(DecodeFrame(frame).outcome, FrameDecode::kFrame);
}

TEST(WireFrameTest, MultiFrameBufferConsumesExactlyOneFrame) {
  const std::string first = EncodeFrame(FrameType::kRequest, "alpha");
  const std::string second = EncodeFrame(FrameType::kResponse, "beta");
  std::string buffer = first + second;
  FrameDecodeResult one = DecodeFrame(buffer);
  ASSERT_EQ(one.outcome, FrameDecode::kFrame);
  EXPECT_EQ(one.frame.payload, "alpha");
  ASSERT_EQ(one.consumed, first.size());
  buffer.erase(0, one.consumed);
  FrameDecodeResult two = DecodeFrame(buffer);
  ASSERT_EQ(two.outcome, FrameDecode::kFrame);
  EXPECT_EQ(two.frame.type, FrameType::kResponse);
  EXPECT_EQ(two.frame.payload, "beta");
  EXPECT_EQ(two.consumed, buffer.size());
}

TEST(WireFrameTest, BadMagicRejectedFromTheFirstWrongByte) {
  // A single wrong byte is enough — the decoder must not stall in
  // kIncomplete waiting for a full header that can never become valid.
  FrameDecodeResult one = DecodeFrame("X");
  ASSERT_EQ(one.outcome, FrameDecode::kCorrupt);
  EXPECT_NE(one.detail.find("bad magic"), std::string::npos);
  FrameDecodeResult prefix = DecodeFrame("JOPX");
  ASSERT_EQ(prefix.outcome, FrameDecode::kCorrupt);
  EXPECT_NE(prefix.detail.find("bad magic"), std::string::npos);
  // A correct magic prefix is still incomplete, not corrupt.
  EXPECT_EQ(DecodeFrame("JOP").outcome, FrameDecode::kIncomplete);
}

TEST(WireFrameTest, UnknownFrameTypeRejected) {
  std::string frame = EncodeFrame(FrameType::kRequest, "payload");
  frame[5] = static_cast<char>(9);
  FrameDecodeResult decoded = DecodeFrame(frame);
  ASSERT_EQ(decoded.outcome, FrameDecode::kCorrupt);
  EXPECT_NE(decoded.detail.find("unknown frame type"), std::string::npos);
}

TEST(WireFrameTest, HostileLengthRejectedBeforeAllocation) {
  std::string frame = EncodeFrame(FrameType::kRequest, "payload");
  // payload_len = 0x7fffffff: far past the ceiling; the decoder must
  // reject from the header alone instead of waiting for 2 GiB.
  frame[6] = static_cast<char>(0xff);
  frame[7] = static_cast<char>(0xff);
  frame[8] = static_cast<char>(0xff);
  frame[9] = static_cast<char>(0x7f);
  FrameDecodeResult decoded = DecodeFrame(frame);
  ASSERT_EQ(decoded.outcome, FrameDecode::kCorrupt);
  EXPECT_NE(decoded.detail.find("exceeds ceiling"), std::string::npos);
}

TEST(WireFrameTest, LengthJustPastCeilingRejectedJustBelowIsIncomplete) {
  std::string frame = EncodeFrame(FrameType::kRequest, "");
  const auto set_len = [&frame](uint32_t len) {
    for (int i = 0; i < 4; ++i) {
      frame[6 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
    }
  };
  set_len(kMaxWirePayloadBytes + 1);
  EXPECT_EQ(DecodeFrame(frame).outcome, FrameDecode::kCorrupt);
  // At exactly the ceiling the length is legal; the bytes just have not
  // arrived yet.
  set_len(kMaxWirePayloadBytes);
  EXPECT_EQ(DecodeFrame(frame).outcome, FrameDecode::kIncomplete);
}

TEST(WireFrameTest, EverySingleBitFlipIsDetected) {
  // CRC-32 detects all single-bit errors, and a flip in the header either
  // breaks the magic, the type, the length, or the checksum — so no flip
  // anywhere in the frame may ever decode as a (necessarily wrong) frame.
  const std::string pristine =
      EncodeFrame(FrameType::kRequest, EncodeRequestPayload(ChainRequest()));
  for (size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = pristine;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      FrameDecodeResult decoded = DecodeFrame(mutated);
      ASSERT_NE(decoded.outcome, FrameDecode::kFrame)
          << "bit " << bit << " of byte " << byte << " survived";
      if (decoded.outcome == FrameDecode::kCorrupt) {
        EXPECT_FALSE(decoded.detail.empty());
      }
    }
  }
}

TEST(WireFrameTest, EmptyBufferIsIncomplete) {
  EXPECT_EQ(DecodeFrame(std::string_view()).outcome, FrameDecode::kIncomplete);
}

TEST(WireRequestTest, RoundTripAcrossWorkloadFamilies) {
  Random rng(4242);
  for (int i = 0; i < 40; ++i) {
    std::string family;
    Result<QueryGraph> graph = DrawWorkloadGraph(rng, &family);
    ASSERT_TRUE(graph.ok());
    ServeRequest request;
    request.graph = *graph;
    if (i % 3 == 0) {
      request.orderer = "DPsize";
    }
    request.cost_model = (i % 2 == 0) ? "cout" : "bestof";
    request.memo_entry_budget = (i % 4 == 0) ? 0 : 1000 + i;
    request.deadline_seconds = (i % 5 == 0) ? 0.0 : 0.125 * (i + 1);
    request.threads = i % 3;
    const std::string payload = EncodeRequestPayload(request);
    Result<ServeRequest> decoded = DecodeRequestPayload(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n"
                              << payload;
    // The canonical grammar means decode(encode(x)) re-encodes to the
    // exact same bytes — field-by-field equality follows from that plus
    // the encoder covering every field.
    EXPECT_EQ(EncodeRequestPayload(*decoded), payload) << family;
    EXPECT_EQ(decoded->orderer, request.orderer);
    EXPECT_EQ(decoded->cost_model, request.cost_model);
    EXPECT_EQ(decoded->memo_entry_budget, request.memo_entry_budget);
    EXPECT_EQ(decoded->deadline_seconds, request.deadline_seconds);
    EXPECT_EQ(decoded->threads, request.threads);
    EXPECT_EQ(decoded->graph.relation_count(), request.graph.relation_count());
    EXPECT_EQ(decoded->graph.edge_count(), request.graph.edge_count());
  }
}

TEST(WireRequestTest, ExtremeDoublesRoundTripBitForBit) {
  ServeRequest request;
  ASSERT_TRUE(request.graph.AddRelation(1e305).ok());
  ASSERT_TRUE(request.graph.AddRelation(1e-305).ok());
  ASSERT_TRUE(request.graph.AddRelation(0.1 + 0.2).ok());
  ASSERT_TRUE(request.graph.AddEdge(0, 1, 1e-12).ok());
  ASSERT_TRUE(request.graph.AddEdge(1, 2, 0.3333333333333333).ok());
  request.cost_model = "cout";
  request.deadline_seconds = 1e-3;
  const std::string payload = EncodeRequestPayload(request);
  Result<ServeRequest> decoded = DecodeRequestPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(EncodeRequestPayload(*decoded), payload);
  EXPECT_EQ(decoded->graph.cardinality(0), 1e305);
  EXPECT_EQ(decoded->graph.cardinality(1), 1e-305);
  EXPECT_EQ(decoded->graph.cardinality(2), 0.1 + 0.2);
  EXPECT_EQ(decoded->graph.edges()[0].selectivity, 1e-12);
  EXPECT_EQ(decoded->graph.edges()[1].selectivity, 0.3333333333333333);
}

TEST(WireRequestTest, FaultScheduleHasNoWireSpelling) {
  ServeRequest request = ChainRequest();
  request.faults.emplace();
  request.faults->seed = 7;
  const std::string payload = EncodeRequestPayload(request);
  EXPECT_EQ(payload.find("fault"), std::string::npos);
  Result<ServeRequest> decoded = DecodeRequestPayload(payload);
  ASSERT_TRUE(decoded.ok());
  // The grammar has no spelling for fault schedules, so they can never
  // arrive over the network.
  EXPECT_FALSE(decoded->faults.has_value());
}

TEST(WireRequestTest, MalformedPayloadsRejectedWithTypedLineAnchoredErrors) {
  const std::string valid = EncodeRequestPayload(ChainRequest());
  const struct {
    const char* name;
    std::string payload;
    const char* expect_substring;
  } cases[] = {
      {"empty", "", "joinopt-wire"},
      {"bad version", "joinopt-wire v2\nrequest\nend\n", "unsupported"},
      {"wrong kind", "joinopt-wire v1\nresponse\nend\n", "request"},
      {"duplicate orderer",
       "joinopt-wire v1\nrequest\norderer DPccp\norderer DPsub\ncost cout\n"
       "graph 1 0\nrel 0 5\nend\n",
       "duplicate"},
      {"missing cost",
       "joinopt-wire v1\nrequest\ngraph 1 0\nrel 0 5\nend\n",
       "missing \"cost\""},
      {"unknown field",
       "joinopt-wire v1\nrequest\nshenanigans 1\ncost cout\ngraph 1 0\n"
       "rel 0 5\nend\n",
       "unknown request field"},
      {"negative threads",
       "joinopt-wire v1\nrequest\ncost cout\nthreads -2\ngraph 1 0\n"
       "rel 0 5\nend\n",
       "threads must be >= 0"},
      {"zero relations",
       "joinopt-wire v1\nrequest\ncost cout\ngraph 0 0\nend\n",
       "relation count out of range"},
      {"too many relations",
       "joinopt-wire v1\nrequest\ncost cout\ngraph 9999 0\nend\n",
       "relation count out of range"},
      {"relation index out of order",
       "joinopt-wire v1\nrequest\ncost cout\ngraph 2 0\nrel 0 5\nrel 5 5\n"
       "end\n",
       "out of order"},
      {"edge endpoint out of range",
       "joinopt-wire v1\nrequest\ncost cout\ngraph 2 1\nrel 0 5\nrel 1 5\n"
       "join 0 7 0.5\nend\n",
       "line"},
      {"unparseable cardinality",
       "joinopt-wire v1\nrequest\ncost cout\ngraph 1 0\nrel 0 banana\nend\n",
       "cardinality"},
      {"missing end", valid.substr(0, valid.size() - 4), "end"},
      {"trailing content", valid + "extra stuff\n", "trailing content"},
  };
  for (const auto& test : cases) {
    Result<ServeRequest> decoded = DecodeRequestPayload(test.payload);
    ASSERT_FALSE(decoded.ok()) << test.name;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << test.name;
    EXPECT_NE(decoded.status().message().find(test.expect_substring),
              std::string::npos)
        << test.name << ": " << decoded.status().message();
  }
}

TEST(WireResponseTest, ServedPlanRoundTripsBitForBit) {
  const ServeResponse response = ServedResponse();
  const std::string payload = EncodeResponsePayload(response);
  Result<ServeResponse> decoded = DecodeResponsePayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString() << "\n" << payload;
  EXPECT_EQ(EncodeResponsePayload(*decoded), payload);
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->cost, response.cost);
  EXPECT_EQ(decoded->cardinality, response.cardinality);
  EXPECT_EQ(decoded->algorithm, response.algorithm);
  EXPECT_EQ(decoded->generation, response.generation);
  EXPECT_EQ(decoded->signature, response.signature);
  ASSERT_TRUE(decoded->plan.has_value());
  ASSERT_EQ(decoded->plan->nodes().size(), response.plan->nodes().size());
  for (size_t i = 0; i < response.plan->nodes().size(); ++i) {
    const JoinTreeNode& got = decoded->plan->nodes()[i];
    const JoinTreeNode& want = response.plan->nodes()[i];
    EXPECT_EQ(got.relations.mask(), want.relations.mask());
    EXPECT_EQ(got.cardinality, want.cardinality);
    EXPECT_EQ(got.cost, want.cost);
    EXPECT_EQ(got.relation, want.relation);
    EXPECT_EQ(got.left, want.left);
    EXPECT_EQ(got.right, want.right);
    EXPECT_EQ(got.op, want.op);
  }
}

TEST(WireResponseTest, ErrorAndShedResponsesRoundTrip) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kOverloaded,
        StatusCode::kUnavailable}) {
    ServeResponse response;
    response.status = Status(code, "something went wrong: spaces survive");
    response.shed = code == StatusCode::kOverloaded;
    const std::string payload = EncodeResponsePayload(response);
    Result<ServeResponse> decoded = DecodeResponsePayload(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(EncodeResponsePayload(*decoded), payload);
    EXPECT_EQ(decoded->status.code(), code);
    EXPECT_EQ(decoded->status.message(),
              "something went wrong: spaces survive");
    EXPECT_EQ(decoded->shed, response.shed);
    EXPECT_FALSE(decoded->plan.has_value());
  }
}

TEST(WireResponseTest, MalformedResponsesRejected) {
  const std::string valid = EncodeResponsePayload(ServedResponse());
  const std::string preamble = "joinopt-wire v1\nresponse\n";
  const struct {
    const char* name;
    std::string payload;
  } cases[] = {
      {"ok with message",
       preamble + "status OK\nmessage should not be here\ncost 1\n"
                  "cardinality 1\ncache_hit 0\nshed 0\ngeneration 0\n"
                  "queue_s 0\nexec_s 0\n"
                  "signature OK 1 1 0 0 0 0 0 OK\nend\n"},
      {"unknown status name",
       preamble + "status Bogus\ncost 1\ncardinality 1\ncache_hit 0\n"
                  "shed 0\ngeneration 0\nqueue_s 0\nexec_s 0\n"
                  "signature OK 1 1 0 0 0 0 0 OK\nend\n"},
      {"signature wrong arity",
       preamble + "status OK\ncost 1\ncardinality 1\ncache_hit 0\nshed 0\n"
                  "generation 0\nqueue_s 0\nexec_s 0\nsignature Ok 1 1\n"
                  "end\n"},
      {"zero plan nodes",
       preamble + "status OK\ncost 1\ncardinality 1\ncache_hit 0\nshed 0\n"
                  "generation 0\nqueue_s 0\nexec_s 0\n"
                  "signature OK 1 1 0 0 0 0 0 OK\nplan 0\nend\n"},
      {"node op out of range",
       preamble + "status OK\ncost 1\ncardinality 1\ncache_hit 0\nshed 0\n"
                  "generation 0\nqueue_s 0\nexec_s 0\n"
                  "signature OK 1 1 0 0 0 0 0 OK\nplan 1\n"
                  "node 1 5 0 0 -1 -1 99\nend\n"},
      {"structurally invalid plan",
       preamble + "status OK\ncost 1\ncardinality 1\ncache_hit 0\nshed 0\n"
                  "generation 0\nqueue_s 0\nexec_s 0\n"
                  "signature OK 1 1 0 0 0 0 0 OK\nplan 3\n"
                  "node 1 5 0 0 -1 -1 0\nnode 2 5 0 1 -1 -1 0\n"
                  "node 3 25 30 -1 0 0 0\nend\n"},
      {"truncated", valid.substr(0, valid.size() / 2)},
      {"trailing content", valid + "extra\n"},
  };
  for (const auto& test : cases) {
    Result<ServeResponse> decoded = DecodeResponsePayload(test.payload);
    ASSERT_FALSE(decoded.ok()) << test.name;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
        << test.name << ": " << decoded.status().ToString();
  }
}

TEST(WireResponseTest, PlanRejectionNamesTheRevalidator) {
  // The crafted-plan defense specifically: a node list whose masks do
  // not partition must be refused by the decoder's structural checks,
  // not accepted into a JoinTree that violates its invariants.
  const std::string payload =
      "joinopt-wire v1\nresponse\nstatus OK\ncost 1\ncardinality 1\n"
      "cache_hit 0\nshed 0\ngeneration 0\nqueue_s 0\nexec_s 0\n"
      "signature OK 1 1 0 0 0 0 0 OK\nplan 3\n"
      "node 1 5 0 0 -1 -1 0\nnode 2 5 0 1 -1 -1 0\n"
      "node 7 25 30 -1 0 1 0\nend\n";
  Result<ServeResponse> decoded = DecodeResponsePayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("disjoint union"),
            std::string::npos)
      << decoded.status().ToString();
}

}  // namespace
}  // namespace serve
}  // namespace joinopt
