#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, and run the full test suite three
# times — plain (RelWithDebInfo, the shipping configuration), under
# ASan+UBSan (Debug, so assertions and the plan-table generation checks
# are live), and under TSan (Debug), which builds the concurrent soak
# harness and the differential fuzzer and runs them with the parallel DP
# orderers in the algorithm mix. The plain pass additionally emits the
# BENCH_parallel.json thread-scaling artifact.
# Intended both for automation and as the one command to run before
# sending a change:
#
#   tools/ci.sh            # all three passes
#   tools/ci.sh plain      # just the plain pass
#   tools/ci.sh sanitize   # just the ASan+UBSan pass
#   tools/ci.sh tsan       # just the TSan soak pass
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local label="$1" build_dir="$2"
  shift 2
  echo "=== ${label}: configure (${build_dir}) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ${label}: test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  echo "=== ${label}: fuzz smoke ==="
  # Fixed seeds so a red run is reproducible verbatim. 500 iterations
  # cycle the differential fuzzer through all six round types (plain,
  # extreme, degenerate statistics, and the three fault injections);
  # under the sanitize pass this doubles as a leak/UB sweep of every
  # error path — including the DPconv slice: the subset-convolution
  # orderer sits in the differential pool, so its zeta-transform
  # workspace, its bit-identity-to-DPccp oracle, and its typed non-Cout
  # rejection all run under ASan/UBSan here.
  # The runs also interleave snapshot-mutation rounds against the
  # plan-cache persistence layer; the guard below requires at least one
  # corrupt record to have been skipped without a nonzero exit — proof
  # the corruption-tolerant skip path ran, not just the happy path.
  "${build_dir}/tools/joinopt_fuzz" --iters 500 --seed 1 \
    | tee "${build_dir}/fuzz_smoke.log"
  "${build_dir}/tools/joinopt_fuzz" --iters 500 --seed 20060912 \
    | tee -a "${build_dir}/fuzz_smoke.log"
  if ! grep -Eq "snapshot fuzz: [0-9]+ mutations, [1-9][0-9]* corrupt records skipped" \
      "${build_dir}/fuzz_smoke.log"; then
    echo "fuzz smoke: snapshot mutation rounds never skipped a corrupt record" >&2
    exit 1
  fi
  # Same proof obligation for the wire-frame mutation rounds: at least
  # one mutated frame must have been REJECTED (CRC/magic/length), not
  # just truncated into kIncomplete — otherwise the corruption-rejection
  # path never ran.
  if ! grep -Eq "wire fuzz: [0-9]+ mutations, [1-9][0-9]* rejected" \
      "${build_dir}/fuzz_smoke.log"; then
    echo "fuzz smoke: wire mutation rounds never rejected a corrupt frame" >&2
    exit 1
  fi
  echo "=== ${label}: soak smoke ==="
  # The concurrent anytime soak: mixed graph families, randomized budget
  # / deadline / fault trips, per-thread fault injectors. Any crash,
  # invalid plan, or cross-query state leak fails the run. --repro-dir
  # arms the flight recorder, so a red soak leaves replayable bundles
  # behind instead of just a log line.
  rm -rf "${build_dir}/repro-artifacts"
  "${build_dir}/tools/joinopt_soak" --threads 8 --queries 500 \
    --repro-dir "${build_dir}/repro-artifacts/soak"
  echo "=== ${label}: service chaos smoke ==="
  # The serving layer under chaos: recurring queries through the plan
  # cache with per-request fault schedules, mid-stream catalog-generation
  # bumps, and overload bursts. Every cache hit is compared against a
  # fresh DP re-run (the poisoning oracle); sheds must be typed
  # kOverloaded; the watchdog turns a stall into a hard failure.
  "${build_dir}/tools/joinopt_soak" --service --threads 8 --queries 300
  echo "=== ${label}: crash recovery soak ==="
  # The process-kill chaos harness: fork the service, SIGKILL it
  # mid-traffic (and regularly mid-snapshot-write) three times, and
  # require every restart to recover the full pool from the surviving
  # snapshot with bit-identical replay — then one clean cycle and a
  # corruption drill that must skip the bad record with a typed count.
  "${build_dir}/tools/joinopt_soak" --crash-recovery --cycles 3 \
    --snapshot "${build_dir}/crash_recovery.snap"
  echo "=== ${label}: wire chaos soak ==="
  # The network front end under chaos: fork/SIGKILL server processes
  # mid-exchange (clients must get typed kUnavailable, snapshots must
  # survive), then the in-process battery — loopback responses held
  # bit-identical to SubmitAndWait, hostile frames answered with typed
  # errors and clean closes, slowloris writers deadline-closed, mid-frame
  # disconnects shrugged off, and connection-table overflow shed with a
  # typed kOverloaded frame. The server crashing on ANY of it is the
  # failure.
  "${build_dir}/tools/joinopt_soak" --wire --cycles 3
  echo "=== ${label}: replay smoke ==="
  # The flight-recorder loop, end to end: a fuzz run that arms fault
  # injection captures one bundle per injected failure; every bundle must
  # then replay bit-for-bit through joinopt_cli. A divergence means
  # nondeterminism crept into an optimizer path (iteration order, time,
  # uninitialized reads) — exactly what the recorder exists to catch.
  "${build_dir}/tools/joinopt_fuzz" --iters 240 --seed 5 \
    --repro-dir "${build_dir}/repro-artifacts/fuzz"
  replayed=0
  for bundle in "${build_dir}"/repro-artifacts/fuzz/*.joinopt; do
    [ -e "${bundle}" ] || continue
    "${build_dir}/tools/joinopt_cli" replay "${bundle}" > /dev/null
    replayed=$((replayed + 1))
  done
  if [ "${replayed}" -eq 0 ]; then
    echo "replay smoke: no bundles captured (fault rounds should emit)" >&2
    exit 1
  fi
  echo "replay smoke: ${replayed} bundle(s) reproduced bit-for-bit"
  if [ "${label}" != plain ]; then
    return  # The bench sweep is a perf cell; sanitizer builds would only
            # add minutes without checking anything the plain pass misses.
  fi
  echo "=== ${label}: parallel bench smoke ==="
  # The thread-scaling cell of the parallel DP orderers. The wall-clock
  # column scales only with the machine's core count, but the counters
  # are part of the determinism contract and must not move — the JSON
  # artifact (BENCH_parallel.json) records both so perf trajectories and
  # counter regressions are diffable across commits.
  rm -f "${build_dir}/BENCH_parallel.json"
  JOINOPT_BENCH_JSON="${build_dir}/BENCH_parallel.json" \
    "${build_dir}/bench/micro_optimizers" --thread-scaling
  if [ ! -s "${build_dir}/BENCH_parallel.json" ]; then
    echo "parallel bench smoke: no JSON artifact emitted" >&2
    exit 1
  fi
  echo "=== ${label}: parallel perf guard ==="
  # Representation-overhead regression guard: DPsizePar at one thread is
  # serial DPsize plus the reduction/merge machinery, so its runtime is a
  # direct measure of the memo representation's parallel-path overhead.
  # The slab refactor brought the ratio from ~3.5x to ~1x; fail the run
  # if it creeps back above 1.15x.
  python3 - "${build_dir}/BENCH_parallel.json" <<'PYGUARD'
import json, sys
cells = {}
with open(sys.argv[1]) as f:
    for line in f:
        cell = json.loads(line)
        cells[cell["algorithm"]] = cell["elapsed_s"]
serial, par1 = cells["DPsize"], cells["DPsizePar@1"]
ratio = par1 / serial
print(f"DPsizePar@1/DPsize on clique-16: {par1:.3f}s / {serial:.3f}s = {ratio:.3f}x")
if ratio > 1.15:
    print(f"FAIL: parallel representation overhead {ratio:.3f}x exceeds the 1.15x budget", file=sys.stderr)
    sys.exit(1)
PYGUARD
  echo "=== ${label}: conv head-to-head guard ==="
  # DPconv's reason to exist is beating the csg-cmp enumeration on the
  # paper's hardest shape: fail the build if the subset-convolution cell
  # is slower than DPccp's on clique-16 under Cout. Both cells land in
  # BENCH_parallel.json alongside the thread-scaling rows (the bench
  # binary itself exits nonzero on any optimal-cost mismatch between the
  # two, so the perf guard below can assume cost equality held).
  JOINOPT_BENCH_JSON="${build_dir}/BENCH_parallel.json" \
    "${build_dir}/bench/micro_optimizers" --conv-head-to-head
  python3 - "${build_dir}/BENCH_parallel.json" <<'PYCONV'
import json, sys
cells = {}
with open(sys.argv[1]) as f:
    for line in f:
        cell = json.loads(line)
        cells[cell["algorithm"]] = cell["elapsed_s"]
ccp, conv = cells["DPccp"], cells["DPconv"]
print(f"DPconv/DPccp on clique-16: {conv:.3f}s / {ccp:.3f}s = {conv/ccp:.3f}x")
if conv > ccp:
    print(f"FAIL: DPconv ({conv:.3f}s) is slower than DPccp ({ccp:.3f}s) on clique-16", file=sys.stderr)
    sys.exit(1)
PYCONV
  echo "=== ${label}: memo representation bench ==="
  # Index-backend and layout throughput cells (BENCH_memo.json): slab
  # dense/sparse vs the pre-refactor hash-map-of-AoS baseline, plus the
  # clique-16 end-to-end cells, diffable across commits like the
  # parallel artifact above.
  rm -f "${build_dir}/BENCH_memo.json"
  JOINOPT_BENCH_JSON="${build_dir}/BENCH_memo.json" \
    "${build_dir}/bench/micro_plan_table"
  if [ ! -s "${build_dir}/BENCH_memo.json" ]; then
    echo "memo bench: no JSON artifact emitted" >&2
    exit 1
  fi
  echo "=== ${label}: serving bench ==="
  # The serving-layer cells (BENCH_serving.json): hit-rate and throughput
  # at several plan-cache capacities plus the overload-shedding cell. The
  # guard requires the sweep to actually cover multiple cache sizes and
  # the full-pool cache to hit — a silently dead cache would otherwise
  # still produce a plausible-looking artifact.
  rm -f "${build_dir}/BENCH_serving.json"
  JOINOPT_BENCH_JSON="${build_dir}/BENCH_serving.json" \
    "${build_dir}/bench/serving"
  python3 - "${build_dir}/BENCH_serving.json" <<'PYSERVE'
import json, sys
cells = [json.loads(line) for line in open(sys.argv[1])]
capacities = {c["cache_capacity"] for c in cells if c["cell"] != "overload"}
if len(capacities) < 3:
    print(f"FAIL: serving sweep covered only {sorted(capacities)}", file=sys.stderr)
    sys.exit(1)
full = next(c for c in cells if c["cell"] == "full")
if full["hit_rate"] < 0.5:
    print(f"FAIL: full-pool cache hit rate {full['hit_rate']:.2f} < 0.5", file=sys.stderr)
    sys.exit(1)
overload = next(c for c in cells if c["cell"] == "overload")
if overload["shed"] == 0:
    print("FAIL: overload cell shed nothing", file=sys.stderr)
    sys.exit(1)
warm = next(c for c in cells if c["cell"] == "warm_start")
if warm["restored"] == 0 or warm["hit_rate"] < 0.99:
    print(f"FAIL: warm start restored {warm['restored']} entries with hit rate {warm['hit_rate']:.2f} (want restored > 0, hit rate >= 0.99)", file=sys.stderr)
    sys.exit(1)
wire = next((c for c in cells if c["cell"] == "wire"), None)
if wire is None:
    print("FAIL: wire cell missing from the serving sweep", file=sys.stderr)
    sys.exit(1)
if wire["queries"] == 0 or wire["hit_rate"] < 0.5:
    print(f"FAIL: wire cell served {wire['queries']} queries with hit rate {wire['hit_rate']:.2f} (want completion with a live cache)", file=sys.stderr)
    sys.exit(1)
for c in cells:
    if not (0 <= c["latency_p50_s"] <= c["latency_p95_s"] <= c["latency_p99_s"]):
        print(f"FAIL: cell {c['cell']} latency percentiles are not monotone", file=sys.stderr)
        sys.exit(1)
print(f"serving bench: {len(cells)} cells, full-pool hit rate {full['hit_rate']:.1%}, warm-start hit rate {warm['hit_rate']:.1%} ({warm['restored']} restored), overload shed {overload['shed']}, wire {wire['throughput_qps']:.0f} q/s")
PYSERVE
}

run_tsan_pass() {
  local build_dir="build-tsan"
  echo "=== tsan: configure (${build_dir}) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Debug -DJOINOPT_SANITIZE=thread
  echo "=== tsan: build joinopt_soak + joinopt_fuzz ==="
  cmake --build "${build_dir}" -j "${jobs}" --target joinopt_soak joinopt_fuzz
  echo "=== tsan: concurrent soak (~60s) ==="
  # TSan halts the process on the first data race (halt_on_error via
  # -fno-sanitize-recover=all), so a clean exit here certifies the
  # thread_local fault injector and the shared registry/statics are
  # race-free under 8-way concurrent optimization — including the
  # parallel DP orderers' thread pools nested inside the soak workers.
  rm -rf "${build_dir}/repro-artifacts"
  "${build_dir}/tools/joinopt_soak" --threads 8 --queries 500 \
    --seed 20060912 --repro-dir "${build_dir}/repro-artifacts/soak"
  echo "=== tsan: service chaos soak ==="
  # The serving layer's whole concurrency surface under TSan: sharded
  # cache mutexes against the atomic generation stamp, the admission
  # queue against worker pops and drain, promise/future handoff, and the
  # per-request thread_local fault injectors — with the cache enabled,
  # faults armed, generation bumps racing in-flight inserts, and
  # overload bursts racing the queue. The acceptance bar is zero races,
  # zero watchdog aborts, zero poisoning violations.
  "${build_dir}/tools/joinopt_soak" --service --threads 8 --queries 300 \
    --seed 20060912
  echo "=== tsan: wire chaos soak ==="
  # The wire front end's cross-thread seams under TSan: worker-thread
  # completions crossing into the poll() loop through the completed_
  # vector + self-pipe wake, stats counters read from the harness while
  # the loop mutates them, and Start/Stop joining the loop thread. The
  # fork phase runs before any in-process threads exist, so the child
  # processes stay fork-safe under TSan too.
  "${build_dir}/tools/joinopt_soak" --wire --cycles 3 --seed 20060912
  echo "=== tsan: parallel fuzz smoke ==="
  # The differential fuzzer drives DPsizePar/DPsubPar against the serial
  # enumerators, so this slice sweeps the layer-barrier fan-out, the
  # sharded memo reads, and the worker deadline watch under TSan.
  "${build_dir}/tools/joinopt_fuzz" --iters 120 --seed 20060912
}

mode="${1:-all}"
case "${mode}" in
  plain | sanitize | tsan | all) ;;
  *)
    echo "usage: $0 [plain|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac

if [[ "${mode}" == plain || "${mode}" == all ]]; then
  run_pass "plain" build
fi
if [[ "${mode}" == sanitize || "${mode}" == all ]]; then
  run_pass "sanitize" build-sanitize \
    -DCMAKE_BUILD_TYPE=Debug -DJOINOPT_SANITIZE=ON
fi
if [[ "${mode}" == tsan || "${mode}" == all ]]; then
  run_tsan_pass
fi

echo "=== CI green (${mode}) ==="
