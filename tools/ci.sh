#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, and run the full test suite twice —
# once plain (RelWithDebInfo, the shipping configuration) and once under
# ASan+UBSan (Debug, so assertions and the plan-table generation checks
# are live). Intended both for automation and as the one command to run
# before sending a change:
#
#   tools/ci.sh            # both passes
#   tools/ci.sh plain      # just the plain pass
#   tools/ci.sh sanitize   # just the sanitizer pass
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
  local label="$1" build_dir="$2"
  shift 2
  echo "=== ${label}: configure (${build_dir}) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ${label}: test ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  echo "=== ${label}: fuzz smoke ==="
  # Fixed seeds so a red run is reproducible verbatim. 500 iterations
  # cycle the differential fuzzer through all six round types (plain,
  # extreme, degenerate statistics, and the three fault injections);
  # under the sanitize pass this doubles as a leak/UB sweep of every
  # error path.
  "${build_dir}/tools/joinopt_fuzz" --iters 500 --seed 1
  "${build_dir}/tools/joinopt_fuzz" --iters 500 --seed 20060912
}

mode="${1:-all}"
case "${mode}" in
  plain | sanitize | all) ;;
  *)
    echo "usage: $0 [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

if [[ "${mode}" == plain || "${mode}" == all ]]; then
  run_pass "plain" build
fi
if [[ "${mode}" == sanitize || "${mode}" == all ]]; then
  run_pass "sanitize" build-sanitize \
    -DCMAKE_BUILD_TYPE=Debug -DJOINOPT_SANITIZE=ON
fi

echo "=== CI green (${mode}) ==="
