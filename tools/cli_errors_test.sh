#!/usr/bin/env bash
# Exercises joinopt_cli's exit-code contract (see the header of
# joinopt_cli.cc): each failure class maps to a distinct, stable nonzero
# code, diagnostics go to stderr, stdout stays clean on failure.
#
# Usage: cli_errors_test.sh <path-to-joinopt_cli>
set -u

CLI="${1:?usage: cli_errors_test.sh <path-to-joinopt_cli>}"
TMPDIR_LOCAL="$(mktemp -d)"
trap 'rm -rf "${TMPDIR_LOCAL}"' EXIT

fails=0

# expect <name> <want-code> <want-stderr-substring> -- cmd...
# Extra environment goes via `env` inside the command.
expect() {
  local name="$1" want_code="$2" want_substr="$3"
  shift 3
  [ "$1" = "--" ] && shift
  local out err code
  out="${TMPDIR_LOCAL}/${name}.out"
  err="${TMPDIR_LOCAL}/${name}.err"
  "$@" >"${out}" 2>"${err}"
  code=$?
  if [ "${code}" -ne "${want_code}" ]; then
    echo "FAIL ${name}: exit code ${code}, want ${want_code}" >&2
    sed 's/^/    stderr: /' "${err}" >&2
    fails=$((fails + 1))
    return
  fi
  if [ -n "${want_substr}" ] && ! grep -q "${want_substr}" "${err}"; then
    echo "FAIL ${name}: stderr does not mention '${want_substr}'" >&2
    sed 's/^/    stderr: /' "${err}" >&2
    fails=$((fails + 1))
    return
  fi
  if [ "${want_code}" -ne 0 ] && [ -s "${out}" ]; then
    echo "FAIL ${name}: failure wrote to stdout" >&2
    fails=$((fails + 1))
    return
  fi
  echo "ok ${name}"
}

# Fixture specs.
GOOD="${TMPDIR_LOCAL}/good.spec"
printf 'rel a 100\nrel b 200\nrel c 50\njoin a b 0.1\njoin b c 0.5\n' \
  > "${GOOD}"
DISCONNECTED="${TMPDIR_LOCAL}/disconnected.spec"
printf 'rel a 100\nrel b 200\n' > "${DISCONNECTED}"
MALFORMED="${TMPDIR_LOCAL}/malformed.spec"
printf 'rel a banana\n' > "${MALFORMED}"

expect success 0 "" -- "${CLI}" explain "${GOOD}"
expect usage_no_args 2 "usage" -- "${CLI}"
expect usage_bad_command 2 "usage" -- "${CLI}" frobnicate
expect unknown_algorithm 2 "unknown join orderer" -- \
  "${CLI}" explain "${GOOD}" NoSuchAlgo
expect unknown_cost_model 2 "unknown cost model" -- \
  "${CLI}" explain "${GOOD}" DPccp nosuchcost
expect missing_file 3 "NotFound" -- "${CLI}" explain "${TMPDIR_LOCAL}/absent"
expect malformed_spec 3 "InvalidArgument" -- "${CLI}" explain "${MALFORMED}"
expect disconnected_graph 7 "FailedPrecondition" -- \
  "${CLI}" explain "${DISCONNECTED}"
expect budget_exceeded 6 "BudgetExceeded" -- \
  env JOINOPT_MEMO_BUDGET=1 "${CLI}" explain "${GOOD}"
# Fault injection: the catalog hands the optimizer corrupted statistics;
# the optimizer prologue must reject them as DegenerateStatistics.
expect degenerate_stats 5 "DegenerateStatistics" -- \
  env JOINOPT_FAULT_STATS_AT=1 "${CLI}" explain "${GOOD}"
# Fault injection: the first memo-entry population fails (Internal).
expect injected_alloc_failure 8 "Internal" -- \
  env JOINOPT_FAULT_ALLOC_AT=1 "${CLI}" explain "${GOOD}"

# --best-effort: the same tripped budget now salvages a complete plan.
# Exit 9 is the one nonzero code that DOES write stdout (the plan), so it
# gets its own check instead of expect().
be_out="${TMPDIR_LOCAL}/best_effort.out"
be_err="${TMPDIR_LOCAL}/best_effort.err"
env JOINOPT_MEMO_BUDGET=1 "${CLI}" explain --best-effort "${GOOD}" \
  >"${be_out}" 2>"${be_err}"
be_code=$?
if [ "${be_code}" -ne 9 ]; then
  echo "FAIL best_effort: exit code ${be_code}, want 9" >&2
  sed 's/^/    stderr: /' "${be_err}" >&2
  fails=$((fails + 1))
elif ! [ -s "${be_out}" ]; then
  echo "FAIL best_effort: salvaged plan missing from stdout" >&2
  fails=$((fails + 1))
elif ! grep -q "best-effort" "${be_err}"; then
  echo "FAIL best_effort: degradation report missing from stderr" >&2
  sed 's/^/    stderr: /' "${be_err}" >&2
  fails=$((fails + 1))
else
  echo "ok best_effort"
fi
# Without the flag the same limit still fails hard: salvage is opt-in.
expect budget_without_flag 6 "BudgetExceeded" -- \
  env JOINOPT_MEMO_BUDGET=1 "${CLI}" explain "${GOOD}"

# ---- Flight recorder: record / replay / minimize ----

# A malformed fault knob aborts ANY subcommand with exit 3 — never a
# silently-disarmed injector.
expect malformed_fault_env 3 "JOINOPT_FAULT_ALLOC_AT" -- \
  env JOINOPT_FAULT_ALLOC_AT=banana "${CLI}" list

BUNDLE="${TMPDIR_LOCAL}/bundle.joinopt"
env JOINOPT_FAULT_ALLOC_AT=2 "${CLI}" record "${GOOD}" DPccp cout \
  > "${BUNDLE}" 2>/dev/null
if [ $? -ne 0 ] || ! [ -s "${BUNDLE}" ]; then
  echo "FAIL record: no bundle produced" >&2
  fails=$((fails + 1))
fi

# A freshly recorded bundle replays bit-for-bit.
expect replay_clean 0 "reproduced bit-for-bit" -- "${CLI}" replay "${BUNDLE}"

# Tampering with the recorded expectation is detected as divergence
# (exit 10, diagnosis on stderr, stdout clean).
TAMPERED="${TMPDIR_LOCAL}/tampered.joinopt"
sed 's/^expect counters .*/expect counters 999 999 999 999/' \
  "${BUNDLE}" > "${TAMPERED}"
expect replay_divergence 10 "DIVERGED" -- "${CLI}" replay "${TAMPERED}"

# An unparsable bundle is an input error (exit 3, with a line number).
BROKEN="${TMPDIR_LOCAL}/broken.joinopt"
printf 'joinopt-repro v1\nrel a ten\n' > "${BROKEN}"
expect replay_malformed_bundle 3 "line 2" -- "${CLI}" replay "${BROKEN}"
expect minimize_malformed_bundle 3 "line 2" -- "${CLI}" minimize "${BROKEN}"

# minimize emits a shrunk bundle on stdout that itself replays clean
# (exercising replay's stdin path).
MINIMIZED="${TMPDIR_LOCAL}/minimized.joinopt"
"${CLI}" minimize "${BUNDLE}" > "${MINIMIZED}" 2>/dev/null
if [ $? -ne 0 ] || ! [ -s "${MINIMIZED}" ]; then
  echo "FAIL minimize: no shrunk bundle produced" >&2
  fails=$((fails + 1))
else
  if "${CLI}" replay - < "${MINIMIZED}" >/dev/null 2>&1; then
    echo "ok minimize_then_replay"
  else
    echo "FAIL minimize_then_replay: shrunk bundle diverged (exit $?)" >&2
    fails=$((fails + 1))
  fi
fi

if [ "${fails}" -ne 0 ]; then
  echo "${fails} exit-code contract check(s) failed" >&2
  exit 1
fi
echo "all exit-code contract checks passed"
