#!/usr/bin/env bash
# Exercises joinopt_cli's exit-code contract (see the header of
# joinopt_cli.cc): each failure class maps to a distinct, stable nonzero
# code, diagnostics go to stderr, stdout stays clean on failure.
#
# Usage: cli_errors_test.sh <path-to-joinopt_cli>
set -u

CLI="${1:?usage: cli_errors_test.sh <path-to-joinopt_cli>}"
TMPDIR_LOCAL="$(mktemp -d)"
trap 'rm -rf "${TMPDIR_LOCAL}"' EXIT

fails=0

# expect <name> <want-code> <want-stderr-substring> -- cmd...
# Extra environment goes via `env` inside the command.
expect() {
  local name="$1" want_code="$2" want_substr="$3"
  shift 3
  [ "$1" = "--" ] && shift
  local out err code
  out="${TMPDIR_LOCAL}/${name}.out"
  err="${TMPDIR_LOCAL}/${name}.err"
  "$@" >"${out}" 2>"${err}"
  code=$?
  if [ "${code}" -ne "${want_code}" ]; then
    echo "FAIL ${name}: exit code ${code}, want ${want_code}" >&2
    sed 's/^/    stderr: /' "${err}" >&2
    fails=$((fails + 1))
    return
  fi
  if [ -n "${want_substr}" ] && ! grep -q "${want_substr}" "${err}"; then
    echo "FAIL ${name}: stderr does not mention '${want_substr}'" >&2
    sed 's/^/    stderr: /' "${err}" >&2
    fails=$((fails + 1))
    return
  fi
  if [ "${want_code}" -ne 0 ] && [ -s "${out}" ]; then
    echo "FAIL ${name}: failure wrote to stdout" >&2
    fails=$((fails + 1))
    return
  fi
  echo "ok ${name}"
}

# Fixture specs.
GOOD="${TMPDIR_LOCAL}/good.spec"
printf 'rel a 100\nrel b 200\nrel c 50\njoin a b 0.1\njoin b c 0.5\n' \
  > "${GOOD}"
DISCONNECTED="${TMPDIR_LOCAL}/disconnected.spec"
printf 'rel a 100\nrel b 200\n' > "${DISCONNECTED}"
MALFORMED="${TMPDIR_LOCAL}/malformed.spec"
printf 'rel a banana\n' > "${MALFORMED}"

expect success 0 "" -- "${CLI}" explain "${GOOD}"
expect usage_no_args 2 "usage" -- "${CLI}"
expect usage_bad_command 2 "usage" -- "${CLI}" frobnicate
expect unknown_algorithm 2 "unknown join orderer" -- \
  "${CLI}" explain "${GOOD}" NoSuchAlgo
expect unknown_cost_model 2 "unknown cost model" -- \
  "${CLI}" explain "${GOOD}" DPccp nosuchcost
expect missing_file 3 "NotFound" -- "${CLI}" explain "${TMPDIR_LOCAL}/absent"
expect malformed_spec 3 "InvalidArgument" -- "${CLI}" explain "${MALFORMED}"
expect disconnected_graph 7 "FailedPrecondition" -- \
  "${CLI}" explain "${DISCONNECTED}"
expect budget_exceeded 6 "BudgetExceeded" -- \
  env JOINOPT_MEMO_BUDGET=1 "${CLI}" explain "${GOOD}"
# Fault injection: the catalog hands the optimizer corrupted statistics;
# the optimizer prologue must reject them as DegenerateStatistics.
expect degenerate_stats 5 "DegenerateStatistics" -- \
  env JOINOPT_FAULT_STATS_AT=1 "${CLI}" explain "${GOOD}"
# Fault injection: the first memo-entry population fails (Internal).
expect injected_alloc_failure 8 "Internal" -- \
  env JOINOPT_FAULT_ALLOC_AT=1 "${CLI}" explain "${GOOD}"

# --best-effort: the same tripped budget now salvages a complete plan.
# Exit 9 is the one nonzero code that DOES write stdout (the plan), so it
# gets its own check instead of expect().
be_out="${TMPDIR_LOCAL}/best_effort.out"
be_err="${TMPDIR_LOCAL}/best_effort.err"
env JOINOPT_MEMO_BUDGET=1 "${CLI}" explain --best-effort "${GOOD}" \
  >"${be_out}" 2>"${be_err}"
be_code=$?
if [ "${be_code}" -ne 9 ]; then
  echo "FAIL best_effort: exit code ${be_code}, want 9" >&2
  sed 's/^/    stderr: /' "${be_err}" >&2
  fails=$((fails + 1))
elif ! [ -s "${be_out}" ]; then
  echo "FAIL best_effort: salvaged plan missing from stdout" >&2
  fails=$((fails + 1))
elif ! grep -q "best-effort" "${be_err}"; then
  echo "FAIL best_effort: degradation report missing from stderr" >&2
  sed 's/^/    stderr: /' "${be_err}" >&2
  fails=$((fails + 1))
else
  echo "ok best_effort"
fi
# Without the flag the same limit still fails hard: salvage is opt-in.
expect budget_without_flag 6 "BudgetExceeded" -- \
  env JOINOPT_MEMO_BUDGET=1 "${CLI}" explain "${GOOD}"

# ---- Flight recorder: record / replay / minimize ----

# A malformed fault knob aborts ANY subcommand with exit 3 — never a
# silently-disarmed injector.
expect malformed_fault_env 3 "JOINOPT_FAULT_ALLOC_AT" -- \
  env JOINOPT_FAULT_ALLOC_AT=banana "${CLI}" list

BUNDLE="${TMPDIR_LOCAL}/bundle.joinopt"
env JOINOPT_FAULT_ALLOC_AT=2 "${CLI}" record "${GOOD}" DPccp cout \
  > "${BUNDLE}" 2>/dev/null
if [ $? -ne 0 ] || ! [ -s "${BUNDLE}" ]; then
  echo "FAIL record: no bundle produced" >&2
  fails=$((fails + 1))
fi

# A freshly recorded bundle replays bit-for-bit.
expect replay_clean 0 "reproduced bit-for-bit" -- "${CLI}" replay "${BUNDLE}"

# Tampering with the recorded expectation is detected as divergence
# (exit 10, diagnosis on stderr, stdout clean).
TAMPERED="${TMPDIR_LOCAL}/tampered.joinopt"
sed 's/^expect counters .*/expect counters 999 999 999 999/' \
  "${BUNDLE}" > "${TAMPERED}"
expect replay_divergence 10 "DIVERGED" -- "${CLI}" replay "${TAMPERED}"

# An unparsable bundle is an input error (exit 3, with a line number).
BROKEN="${TMPDIR_LOCAL}/broken.joinopt"
printf 'joinopt-repro v1\nrel a ten\n' > "${BROKEN}"
expect replay_malformed_bundle 3 "line 2" -- "${CLI}" replay "${BROKEN}"
expect minimize_malformed_bundle 3 "line 2" -- "${CLI}" minimize "${BROKEN}"

# minimize emits a shrunk bundle on stdout that itself replays clean
# (exercising replay's stdin path).
MINIMIZED="${TMPDIR_LOCAL}/minimized.joinopt"
"${CLI}" minimize "${BUNDLE}" > "${MINIMIZED}" 2>/dev/null
if [ $? -ne 0 ] || ! [ -s "${MINIMIZED}" ]; then
  echo "FAIL minimize: no shrunk bundle produced" >&2
  fails=$((fails + 1))
else
  if "${CLI}" replay - < "${MINIMIZED}" >/dev/null 2>&1; then
    echo "ok minimize_then_replay"
  else
    echo "FAIL minimize_then_replay: shrunk bundle diverged (exit $?)" >&2
    fails=$((fails + 1))
  fi
fi

# ---- Plan-cache snapshots: cache save / load / inspect ----

SNAP="${TMPDIR_LOCAL}/cache.snap"

expect cache_usage 2 "usage" -- "${CLI}" cache
expect cache_usage_bad_verb 2 "usage" -- "${CLI}" cache frobnicate "${SNAP}"
# Missing snapshot is a typed cold start with its own code, distinct from
# the corrupt-file code below.
expect cache_load_missing 3 "no snapshot" -- "${CLI}" cache load "${SNAP}"
expect cache_save_unknown_algo 2 "unknown algorithm" -- \
  "${CLI}" cache save "${SNAP}" "${GOOD}" NoSuchAlgo

# Two saves with different orderers accumulate in one snapshot.
expect cache_save_first 0 "" -- \
  "${CLI}" cache save "${SNAP}" "${GOOD}" DPccp cout
expect cache_save_second 0 "" -- \
  "${CLI}" cache save "${SNAP}" "${GOOD}" DPsub cout
expect cache_load_good 0 "" -- "${CLI}" cache load "${SNAP}"
insp="${TMPDIR_LOCAL}/cache_inspect.out"
if "${CLI}" cache inspect "${SNAP}" > "${insp}" 2>/dev/null \
    && grep -q "^restored: 2$" "${insp}" \
    && grep -q "^skipped corrupt: 0$" "${insp}"; then
  echo "ok cache_inspect_accumulated"
else
  echo "FAIL cache_inspect_accumulated: want restored: 2 from two saves" >&2
  sed 's/^/    stdout: /' "${insp}" >&2
  fails=$((fails + 1))
fi

# A flipped byte in a record body costs that record, never the load: exit
# stays 0 and the report counts the skip.
FLIPPED="${TMPDIR_LOCAL}/cache_flipped.snap"
cp "${SNAP}" "${FLIPPED}"
printf '\377' | dd of="${FLIPPED}" bs=1 seek=60 count=1 conv=notrunc \
  2>/dev/null
flip_out="${TMPDIR_LOCAL}/cache_flip.out"
if "${CLI}" cache load "${FLIPPED}" > "${flip_out}" 2>/dev/null \
    && grep -q "skipped_corrupt=1" "${flip_out}"; then
  echo "ok cache_load_skips_flipped_record"
else
  echo "FAIL cache_load_skips_flipped_record: want exit 0 with" \
       "skipped_corrupt=1" >&2
  sed 's/^/    stdout: /' "${flip_out}" >&2
  fails=$((fails + 1))
fi

# Whole-file corruption (garbage header, truncation below the header) is
# the dedicated cold-start code 11.
GARBAGE_SNAP="${TMPDIR_LOCAL}/cache_garbage.snap"
printf 'not a snapshot' > "${GARBAGE_SNAP}"
expect cache_inspect_garbage 11 "cold start" -- \
  "${CLI}" cache inspect "${GARBAGE_SNAP}"
TRUNCATED_SNAP="${TMPDIR_LOCAL}/cache_truncated.snap"
head -c 20 "${SNAP}" > "${TRUNCATED_SNAP}"
expect cache_load_truncated_header 11 "cold start" -- \
  "${CLI}" cache load "${TRUNCATED_SNAP}"

# ---- Wire serving: serve / query --connect ----

# Malformed serve knobs abort with exit 3, stderr naming the variable —
# strict parsing, never a silent fallback to the default.
expect malformed_serve_listen 3 "JOINOPT_SERVE_LISTEN" -- \
  env JOINOPT_SERVE_LISTEN=not-an-endpoint "${CLI}" serve
expect malformed_serve_conns 3 "JOINOPT_SERVE_MAX_CONNS" -- \
  env JOINOPT_SERVE_MAX_CONNS=banana "${CLI}" serve
expect malformed_serve_timeout 3 "JOINOPT_SERVE_IO_TIMEOUT_S" -- \
  env JOINOPT_SERVE_IO_TIMEOUT_S=0 "${CLI}" serve

# query is wire-only: no --connect is a usage error, and a --connect
# value that is not HOST:PORT is too.
expect query_needs_connect 2 "needs --connect" -- "${CLI}" query "${GOOD}"
expect query_bad_endpoint 2 "usage" -- \
  "${CLI}" query --connect "${GOOD}"

# Nothing listening: the client's typed give-up is the dedicated exit 12
# (kUnavailable), distinct from every local input-error code.
expect query_unavailable 12 "Unavailable" -- \
  env JOINOPT_SERVE_IO_TIMEOUT_S=0.2 \
  "${CLI}" query --connect 127.0.0.1:1 "${GOOD}"

if [ "${fails}" -ne 0 ]; then
  echo "${fails} exit-code contract check(s) failed" >&2
  exit 1
fi
echo "all exit-code contract checks passed"
