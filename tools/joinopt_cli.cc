/// joinopt_cli — the library's command-line front end.
///
///   joinopt_cli explain  <spec-file|-> [algo] [cost]   optimize & explain
///   joinopt_cli dot      <spec-file|-> [plan|graph]    Graphviz output
///   joinopt_cli generate <shape> <n> [seed]            emit a query spec
///   joinopt_cli counters <shape> <n>                   measured vs predicted
///   joinopt_cli record   <spec-file|-> [algo] [cost]   run once, emit a
///                                                      repro bundle
///   joinopt_cli replay   <bundle-file|->               re-execute a bundle
///   joinopt_cli minimize <bundle-file|->               delta-debug a bundle
///   joinopt_cli list                                   registered algorithms
///   joinopt_cli cache save    <snapshot> <spec-file|-> [algo] [cost]
///                                     optimize & add the plan to a
///                                     plan-cache snapshot (accumulating)
///   joinopt_cli cache load    <snapshot>               replay a snapshot,
///                                     print recovery stats
///   joinopt_cli cache inspect <snapshot>               dump header fields,
///                                     record/skip counts
///   joinopt_cli serve                                  run the wire-protocol
///                                     optimizer server (SIGTERM drains)
///   joinopt_cli query --connect HOST:PORT <spec-file|-> [algo] [cost]
///                                     optimize over the wire and explain
///
/// shapes: chain cycle star clique
/// algos:  any name from `joinopt_cli list` (default DPccp); the legacy
///         aliases "linear" (DPsizeLinear), "IDP" (IDP1), and "conv"
///         (DPconv) still work
/// costs:  cout (default) bestof hash nlj smj
///
/// Optimization limits come from the environment: JOINOPT_DEADLINE_S
/// (wall-clock seconds), JOINOPT_MEMO_BUDGET (max memo entries), and
/// JOINOPT_THREADS (worker threads for the parallel orderers; 0 = auto).
/// All limit knobs parse strictly — a malformed value is an exit-3
/// startup error naming the variable, never a silent fallback. A
/// tripped limit reports BudgetExceeded unless the algorithm degrades
/// gracefully (Adaptive falls back and reports what it fell back from).
/// With --best-effort, a tripped limit instead salvages a complete plan
/// from the partial memo: the plan goes to stdout exactly like a normal
/// result, the degradation report goes to stderr, and the process exits
/// with code 9 so scripts can tell a salvaged answer from an optimal one.
/// JOINOPT_POLICY overrides the Adaptive degradation ladder (see
/// src/core/policy.h for the grammar). The JOINOPT_FAULT_* knobs (see
/// src/testing/fault_injection.h) arm the deterministic fault injector
/// for crash-safety testing.
///
/// The flight-recorder workflow (see src/testing/repro.h): `record` runs
/// one optimization under the environment's limits/faults/policy and
/// prints a self-contained bundle to stdout — including the outcome, even
/// when the run failed (the failure IS the recorded phenomenon, so record
/// exits 0). `replay` re-executes a bundle and exits 0 only when the
/// recorded outcome reproduces bit-for-bit (status, cost, cardinality,
/// counter totals, degradation trigger); any divergence is exit 10 with a
/// field-by-field diff on stderr. `minimize` delta-debugs a bundle to the
/// smallest query/options/fault schedule that still fails the same way
/// and prints the shrunk bundle to stdout (shrink statistics on stderr).
///
/// Exit codes (all diagnostics go to stderr):
///   0  success
///   2  usage error: bad command line, unknown algorithm/cost/shape
///   3  input error: file not readable, spec/SQL/bundle unparsable,
///      malformed JOINOPT_FAULT_* or JOINOPT_* limit environment
///   4  catalog failed validation (InvalidCatalog)
///   5  optimizer rejected degenerate statistics (DegenerateStatistics)
///   6  resource budget or deadline exceeded (BudgetExceeded)
///   7  algorithm precondition violated, e.g. disconnected graph
///      (FailedPrecondition)
///   8  internal error (Internal and anything unclassified)
///   9  success, but the plan is best-effort (--best-effort salvage; the
///      plan is on stdout, the degradation report on stderr)
///  10  replay divergence: the bundle re-executed but its outcome does
///      not match the recorded expectation; also Overloaded — the
///      serving layer's typed load-shed (src/serve), mapped here for
///      any embedding that surfaces it through a Status
///  11  snapshot cold start: `cache load` / `cache inspect` found the
///      snapshot unusable as a whole — bad header (magic/version/CRC) or
///      written under a different catalog generation. Individual corrupt
///      records do NOT trip this: they are skipped, counted, and
///      reported with exit 0 (the recovery contract from
///      src/serve/snapshot.h)
///  12  server unavailable: `query --connect` exhausted its retry
///      envelope without obtaining a response (connect refused, I/O
///      failure, corrupt response, deadline) — the typed kUnavailable
///      from src/serve/client.h. A response the SERVER produced keeps
///      its own code (e.g. a shed that outlived the retries is 10)
///
/// The server reads its endpoint and robustness knobs from the
/// environment: JOINOPT_SERVE_LISTEN (HOST:PORT), JOINOPT_SERVE_MAX_CONNS,
/// and JOINOPT_SERVE_IO_TIMEOUT_S, on top of the batch-service knobs
/// JOINOPT_SERVE_WORKERS / JOINOPT_QUEUE_DEPTH / JOINOPT_CACHE_* /
/// JOINOPT_SERVE_SNAPSHOT_*. All strict-parsed: malformed is exit 3.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/outcome.h"
#include "dsl/writer.h"
#include "joinopt.h"
#include "serve/client.h"
#include "serve/fingerprint.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "testing/fault_injection.h"
#include "testing/repro.h"
#include "util/net.h"

namespace joinopt {
namespace {

Result<std::string> ReadAll(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

Result<QueryShape> ParseShape(const std::string& name) {
  if (name == "chain") return QueryShape::kChain;
  if (name == "cycle") return QueryShape::kCycle;
  if (name == "star") return QueryShape::kStar;
  if (name == "clique") return QueryShape::kClique;
  return Status::InvalidArgument("unknown shape '" + name +
                                 "' (chain|cycle|star|clique)");
}

Result<std::unique_ptr<CostModel>> MakeCostModel(const std::string& name) {
  return MakeCostModelByName(name);
}

/// Expands the pre-registry aliases to their registry names.
std::string ResolveAlgorithmName(const std::string& name) {
  if (name == "linear") {
    return "DPsizeLinear";
  }
  if (name == "IDP") {
    return "IDP1";
  }
  if (name == "conv") {
    return "DPconv";
  }
  return name;
}

/// Resolves a CLI algorithm name against the registry, honoring the
/// pre-registry aliases.
Result<const JoinOrderer*> LookupOrderer(const std::string& name) {
  return OptimizerRegistry::GetOrError(ResolveAlgorithmName(name));
}

/// Set by the --best-effort flag: arm partial-memo salvage so a tripped
/// limit degrades to a complete (suboptimal) plan instead of exit 6.
bool g_best_effort = false;

/// Optimization limits from the environment; unset means unlimited.
/// main() runs ValidateLimitEnv() at startup, so a malformed knob has
/// already exited 3 before any command is dispatched — the strict
/// parsers here cannot fail, but the checks stay as a defensive seam
/// (a unit test or future caller could reach this without main()).
OptimizeOptions OptionsFromEnv() {
  OptimizeOptions options;
  const Result<double> deadline =
      EnvDouble("JOINOPT_DEADLINE_S", options.deadline_seconds);
  const Result<uint64_t> budget =
      EnvUint64("JOINOPT_MEMO_BUDGET", options.memo_entry_budget);
  const Result<int> threads = EnvInt("JOINOPT_THREADS", options.threads);
  for (const Status& status :
       {deadline.status(), budget.status(), threads.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(3);
    }
  }
  options.deadline_seconds = *deadline;
  options.memo_entry_budget = *budget;
  options.threads = *threads;
  options.salvage_on_interrupt = g_best_effort;
  return options;
}

/// Epilogue for commands that print a plan: reports a salvaged result on
/// stderr and converts it to the dedicated exit code. The plan itself has
/// already gone to stdout, so `... || [ $? -eq 9 ]` keeps the output.
int FinishPlanCommand(const OptimizationResult& result) {
  if (!result.stats.best_effort) {
    return 0;
  }
  std::fprintf(stderr, "%s\n", result.degradation.ToString().c_str());
  return 9;
}

/// The exit-code contract from the file header: every StatusCode maps to
/// a distinct, stable nonzero code so scripts can branch on the failure
/// class without parsing stderr.
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return 3;
    case StatusCode::kInvalidCatalog:
      return 4;
    case StatusCode::kDegenerateStatistics:
      return 5;
    case StatusCode::kBudgetExceeded:
      return 6;
    case StatusCode::kFailedPrecondition:
      return 7;
    case StatusCode::kInternal:
    case StatusCode::kUnimplemented:
      return 8;
    case StatusCode::kOverloaded:
      return 10;
    case StatusCode::kUnavailable:
      return 12;
  }
  return 8;
}

/// Prints `status` (optionally under a context prefix) to stderr and
/// returns its exit code.
int Fail(const Status& status, const char* prefix = nullptr) {
  if (prefix != nullptr) {
    std::fprintf(stderr, "%s: %s\n", prefix, status.ToString().c_str());
  } else {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
  }
  return ExitCodeFor(status);
}

int Explain(const std::string& path, const std::string& algo,
            const std::string& cost) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<QueryGraph> graph = ParseQuerySpecToGraph(*text);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  Result<std::unique_ptr<CostModel>> cost_model = MakeCostModel(cost);
  if (!cost_model.ok()) {
    std::fprintf(stderr, "%s\n", cost_model.status().ToString().c_str());
    return 2;
  }
  Result<const JoinOrderer*> orderer = LookupOrderer(algo);
  if (!orderer.ok()) {
    std::fprintf(stderr, "%s\n", orderer.status().ToString().c_str());
    return 2;
  }
  Result<OptimizationResult> result =
      (*orderer)->Optimize(*graph, **cost_model, OptionsFromEnv());
  if (!result.ok()) {
    return Fail(result.status(), "optimization failed");
  }
  std::printf("-- %s, cost model %s\n\n%s\n", algo.c_str(), cost.c_str(),
              PlanToExplainString(result->plan, *graph).c_str());
  std::printf("expression: %s\ncost: %.6g  rows: %.6g  pairs: %llu\n",
              PlanToExpression(result->plan, *graph).c_str(), result->cost,
              result->cardinality,
              static_cast<unsigned long long>(
                  result->stats.ono_lohman_counter));
  if (!result->stats.fallback_from.empty()) {
    std::printf("note: %s fell back from %s (resource limit) and used %s\n",
                algo.c_str(), result->stats.fallback_from.c_str(),
                result->stats.algorithm.c_str());
  }
  return FinishPlanCommand(*result);
}

int Dot(const std::string& path, const std::string& what) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<QueryGraph> graph = ParseQuerySpecToGraph(*text);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  if (what == "graph") {
    std::fputs(QueryGraphToDot(*graph).c_str(), stdout);
    return 0;
  }
  const CoutCostModel cost_model;
  Result<const JoinOrderer*> orderer = LookupOrderer("DPccp");
  if (!orderer.ok()) {
    std::fprintf(stderr, "%s\n", orderer.status().ToString().c_str());
    return 2;
  }
  Result<OptimizationResult> result =
      (*orderer)->Optimize(*graph, cost_model, OptionsFromEnv());
  if (!result.ok()) {
    return Fail(result.status());
  }
  std::fputs(PlanToDot(result->plan, *graph).c_str(), stdout);
  return FinishPlanCommand(*result);
}

int Generate(const std::string& shape_name, int n, uint64_t seed) {
  Result<QueryShape> shape = ParseShape(shape_name);
  if (!shape.ok()) {
    std::fprintf(stderr, "%s\n", shape.status().ToString().c_str());
    return 2;
  }
  WorkloadConfig config;
  config.seed = seed;
  Result<QueryGraph> graph = MakeShapeQuery(*shape, n, config);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  std::fputs(WriteQuerySpec(*graph).c_str(), stdout);
  return 0;
}

int Counters(const std::string& shape_name, int n) {
  Result<QueryShape> shape = ParseShape(shape_name);
  if (!shape.ok()) {
    std::fprintf(stderr, "%s\n", shape.status().ToString().c_str());
    return 2;
  }
  if (n < 2 || n > 14) {
    std::fprintf(stderr, "n must be in [2, 14] for the measured run\n");
    return 2;
  }
  Result<QueryGraph> graph = MakeShapeQuery(*shape, n);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  const CoutCostModel cost_model;
  std::printf("%s n=%d   #csg=%llu  #ccp=%llu\n", shape_name.c_str(), n,
              static_cast<unsigned long long>(CsgCount(*shape, n)),
              static_cast<unsigned long long>(CcpCountUnordered(*shape, n)));
  std::printf("%-8s  %14s  %14s\n", "algo", "measured", "predicted");
  const struct {
    const char* algorithm;
    uint64_t predicted;
  } rows[] = {
      {"DPsize", PredictedInnerCounterDPsize(*shape, n)},
      {"DPsub", PredictedInnerCounterDPsub(*shape, n)},
      {"DPccp", PredictedInnerCounterDPccp(*shape, n)},
  };
  for (const auto& row : rows) {
    Result<const JoinOrderer*> orderer = LookupOrderer(row.algorithm);
    if (!orderer.ok()) {
      std::fprintf(stderr, "%s\n", orderer.status().ToString().c_str());
      return 2;
    }
    Result<OptimizationResult> result =
        (*orderer)->Optimize(*graph, cost_model);
    if (!result.ok()) {
      return Fail(result.status(), row.algorithm);
    }
    std::printf("%-8s  %14llu  %14llu%s\n", row.algorithm,
                static_cast<unsigned long long>(result->stats.inner_counter),
                static_cast<unsigned long long>(row.predicted),
                result->stats.inner_counter == row.predicted ? ""
                                                             : "  MISMATCH");
  }
  return 0;
}

int Sql(const std::string& catalog_path, const std::string& query,
        const std::string& algo) {
  Result<std::string> text = ReadAll(catalog_path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<Catalog> catalog = ParseQuerySpec(*text);
  if (!catalog.ok()) {
    return Fail(catalog.status(), "catalog error");
  }
  Result<QueryGraph> graph = ParseSqlJoinQuery(query, *catalog);
  if (!graph.ok()) {
    return Fail(graph.status(), "SQL error");
  }
  Result<const JoinOrderer*> orderer = LookupOrderer(algo);
  if (!orderer.ok()) {
    std::fprintf(stderr, "%s\n", orderer.status().ToString().c_str());
    return 2;
  }
  const BestOfCostModel cost_model = BestOfCostModel::Standard();
  Result<OptimizationResult> result =
      (*orderer)->Optimize(*graph, cost_model, OptionsFromEnv());
  if (!result.ok()) {
    return Fail(result.status(), "optimization failed");
  }
  std::printf("%s\nexpression: %s\ncost: %.6g  rows: %.6g\n",
              PlanToExplainString(result->plan, *graph).c_str(),
              PlanToExpression(result->plan, *graph).c_str(), result->cost,
              result->cardinality);
  return FinishPlanCommand(*result);
}

int Hyper(const std::string& path) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<Hypergraph> graph = ParseHypergraphSpec(*text);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  const CoutCostModel cost_model;
  Result<OptimizationResult> result =
      DPhyp().Optimize(*graph, cost_model, OptionsFromEnv());
  if (!result.ok()) {
    return Fail(result.status(), "DPhyp failed");
  }
  std::printf("-- DPhyp over %d relations, %d (hyper)edges\n\n%s\n"
              "expression: %s\ncost: %.6g  pairs: %llu\n",
              graph->relation_count(), graph->edge_count(),
              PlanToExplainString(result->plan, *graph).c_str(),
              PlanToExpression(result->plan, *graph).c_str(), result->cost,
              static_cast<unsigned long long>(
                  result->stats.ono_lohman_counter));
  return FinishPlanCommand(*result);
}

/// `record`: one optimization run snapshotted as a flight-recorder
/// bundle on stdout. The run executes through the same replay engine the
/// bundle will be re-executed with, so the recorded expectation is by
/// construction reproducible. A FAILED optimization still records (and
/// exits 0): capturing failures is the point. Only setup errors (bad
/// spec, unknown algorithm/cost model) fail the command.
int Record(const std::string& path, const std::string& algo,
           const std::string& cost) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<QueryGraph> graph = ParseQuerySpecToGraph(*text);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  const std::string algorithm = ResolveAlgorithmName(algo);
  if (OptimizerRegistry::Get(algorithm) == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    return 2;
  }
  // The environment IS the run configuration, so snapshot all of it:
  // limits, fault schedule, and (for Adaptive) the degradation policy.
  const Result<testing::FaultConfig> fault = testing::FaultConfigFromEnv();
  if (!fault.ok()) {
    return Fail(fault.status(), "fault environment");
  }
  testing::ReproBundle bundle = testing::MakeReproBundle(
      *graph, algorithm, cost, OptionsFromEnv(), *fault,
      /*throwing_trace=*/false, /*workload_seed=*/0,
      "recorded by joinopt_cli record");
  if (algorithm == "Adaptive") {
    if (const char* policy = std::getenv("JOINOPT_POLICY")) {
      bundle.policy = policy;
    }
  }
  Result<OutcomeSignature> observed = testing::ReplayBundle(bundle);
  if (!observed.ok()) {
    return Fail(observed.status(), "record");
  }
  bundle.expected = *observed;
  bundle.has_expected = true;
  std::fputs(testing::WriteReproBundle(bundle).c_str(), stdout);
  std::fprintf(stderr, "recorded: %s\n", observed->ToString().c_str());
  return 0;
}

/// `replay`: exit 0 iff the bundle's recorded outcome reproduces
/// bit-for-bit; 10 on divergence (diff on stderr); 3 when the bundle
/// cannot be parsed or set up. A partial bundle (no expectation — e.g. a
/// soak inflight flush) prints the observed outcome and exits 0.
int Replay(const std::string& path) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<testing::ReproBundle> bundle = testing::ParseReproBundle(*text);
  if (!bundle.ok()) {
    return Fail(bundle.status(), "bundle error");
  }
  Result<testing::ReplayVerdict> verdict = testing::ReplayAndCompare(*bundle);
  if (!verdict.ok()) {
    return Fail(verdict.status(), "replay setup failed");
  }
  // The observed signature is the payload (stdout, success paths only);
  // verdicts and diagnostics go to stderr, and a divergence keeps stdout
  // clean like every other failure.
  if (bundle->has_expected && !verdict->matches) {
    std::fprintf(stderr,
                 "observed: %s\n"
                 "replay DIVERGED from the recorded outcome:\n%s\n",
                 verdict->observed.ToString().c_str(),
                 verdict->divergence.c_str());
    return 10;
  }
  std::printf("observed: %s\n", verdict->observed.ToString().c_str());
  if (!bundle->has_expected) {
    std::fprintf(stderr,
                 "note: bundle carries no expectation (partial capture); "
                 "nothing to diverge from\n");
    return 0;
  }
  std::fprintf(stderr, "replay: recorded outcome reproduced bit-for-bit\n");
  return 0;
}

/// `minimize`: delta-debug the bundle down to the smallest configuration
/// with the same failure kind; shrunk bundle on stdout, stats on stderr.
int Minimize(const std::string& path) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<testing::ReproBundle> bundle = testing::ParseReproBundle(*text);
  if (!bundle.ok()) {
    return Fail(bundle.status(), "bundle error");
  }
  testing::MinimizeStats stats;
  Result<testing::ReproBundle> minimized =
      testing::MinimizeBundle(*bundle, &stats);
  if (!minimized.ok()) {
    return Fail(minimized.status(), "minimize setup failed");
  }
  std::fputs(testing::WriteReproBundle(*minimized).c_str(), stdout);
  std::fprintf(stderr,
               "minimize: %zu -> %zu relations, %zu -> %zu edges "
               "(%d rounds, %d replays, %d option/fault simplifications)\n",
               bundle->relations.size(), minimized->relations.size(),
               bundle->edges.size(), minimized->edges.size(), stats.rounds,
               stats.replays, stats.simplifications);
  return 0;
}

int List() {
  for (const std::string& name : OptimizerRegistry::Names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

/// `cache save`: optimize the spec the way the serving layer's miss path
/// would (canonical quantized graph, exact first-intent run) and add the
/// plan to the snapshot at `snapshot_path`, accumulating with whatever
/// the snapshot already holds. The snapshot is keyed to ONE catalog: the
/// cache is stamped with Catalog::generation(), so repeated saves with
/// the same spec accumulate (different algorithms/cost models → distinct
/// fingerprints), while a modified spec — whose generation differs — is
/// a typed cold start that restarts the snapshot rather than silently
/// mixing entries computed under different statistics.
int CacheSave(const std::string& snapshot_path, const std::string& spec_path,
              const std::string& algo, const std::string& cost) {
  Result<std::string> text = ReadAll(spec_path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<Catalog> catalog = ParseQuerySpec(*text);
  if (!catalog.ok()) {
    return Fail(catalog.status(), "catalog error");
  }
  Result<QueryGraph> graph = catalog->BuildQueryGraph();
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  Result<std::unique_ptr<CostModel>> cost_model = MakeCostModel(cost);
  if (!cost_model.ok()) {
    std::fprintf(stderr, "%s\n", cost_model.status().ToString().c_str());
    return 2;
  }
  const std::string algorithm = ResolveAlgorithmName(algo);
  if (OptimizerRegistry::Get(algorithm) == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    return 2;
  }
  serve::PlanCache cache{serve::PlanCacheConfig{}};
  Result<serve::SnapshotLoadStats> loaded =
      serve::LoadSnapshot(cache, snapshot_path, catalog->generation());
  if (!loaded.ok()) {
    return Fail(loaded.status(), "snapshot load");
  }
  // A cold start (missing, corrupt, or stale snapshot) is fine here: the
  // save below starts a fresh one. Report it so the operator knows any
  // previously accumulated entries are gone.
  std::fprintf(stderr, "load: %s\n", loaded->ToString().c_str());
  cache.AdvanceGenerationTo(catalog->generation());
  Result<serve::CanonicalQuery> canonical =
      serve::CanonicalizeQuery(*graph, algorithm, cost);
  if (!canonical.ok()) {
    return Fail(canonical.status());
  }
  OptimizerContext ctx(canonical->graph, **cost_model, OptionsFromEnv());
  DegradationPolicy policy;
  PolicyStep step;
  step.algorithm = algorithm;
  policy.Append(std::move(step));
  Result<OptimizationResult> result = RunDegradationPolicy(policy, ctx);
  if (!result.ok()) {
    return Fail(result.status(), "optimization failed");
  }
  serve::CachedPlan entry;
  entry.key = canonical->key;
  entry.hash = canonical->hash;
  entry.generation = catalog->generation();
  entry.signature = ExtractOutcomeSignature(result, ctx.stats());
  entry.cost = result->cost;
  entry.cardinality = result->cardinality;
  entry.algorithm = result->stats.algorithm;
  entry.recompute_seconds = result->stats.elapsed_seconds;
  entry.plan = result->plan;
  const serve::CacheInsert inserted = cache.Insert(std::move(entry));
  Result<serve::SnapshotSaveStats> saved =
      serve::SaveSnapshot(cache, snapshot_path);
  if (!saved.ok()) {
    return Fail(saved.status(), "snapshot save");
  }
  std::printf("insert: %s\nsave: %s\n",
              std::string(serve::CacheInsertName(inserted)).c_str(),
              saved->ToString().c_str());
  return 0;
}

/// `cache load` / `cache inspect`: replay the snapshot into a fresh cache
/// and report what survived. Exit 0 when the header was good (even with
/// skipped corrupt records — recovery worked and says so), 3 when no
/// snapshot exists, 11 on a whole-file cold start (bad header or stale
/// generation).
int CacheLoadOrInspect(const std::string& snapshot_path, bool inspect) {
  serve::PlanCache cache{serve::PlanCacheConfig{}};
  Result<serve::SnapshotLoadStats> loaded =
      serve::LoadSnapshot(cache, snapshot_path);
  if (!loaded.ok()) {
    return Fail(loaded.status(), "snapshot load");
  }
  int code = 8;
  switch (loaded->outcome) {
    case serve::SnapshotLoad::kLoaded:
      code = 0;
      break;
    case serve::SnapshotLoad::kNoSnapshot:
      code = 3;
      break;
    case serve::SnapshotLoad::kBadHeader:
    case serve::SnapshotLoad::kStale:
      code = 11;
      break;
  }
  // Cold starts are failures: the report joins the diagnostics on stderr
  // so stdout stays clean, per the exit-code contract above.
  FILE* out = code == 0 ? stdout : stderr;
  if (inspect) {
    std::fprintf(out, "snapshot: %s\n", snapshot_path.c_str());
    std::fprintf(out, "outcome: %s\n",
                 std::string(serve::SnapshotLoadName(loaded->outcome))
                     .c_str());
    std::fprintf(out, "generation: %llu\n",
                 static_cast<unsigned long long>(loaded->generation));
    std::fprintf(out, "declared records: %llu\n",
                 static_cast<unsigned long long>(loaded->declared_records));
    std::fprintf(out, "bytes: %llu\n",
                 static_cast<unsigned long long>(loaded->bytes));
    std::fprintf(out, "restored: %llu\n",
                 static_cast<unsigned long long>(loaded->restored));
    std::fprintf(out, "skipped corrupt: %llu\n",
                 static_cast<unsigned long long>(loaded->skipped_corrupt));
    std::fprintf(out, "skipped stale: %llu\n",
                 static_cast<unsigned long long>(loaded->skipped_stale));
    std::fprintf(out, "skipped rejected: %llu\n",
                 static_cast<unsigned long long>(loaded->skipped_rejected));
    if (!loaded->detail.empty()) {
      std::fprintf(out, "detail: %s\n", loaded->detail.c_str());
    }
  } else {
    std::fprintf(out, "load: %s\n", loaded->ToString().c_str());
  }
  if (code == 3) {
    std::fprintf(stderr, "no snapshot at '%s'\n", snapshot_path.c_str());
  } else if (code == 11) {
    std::fprintf(stderr, "snapshot cold start: %s\n", loaded->detail.c_str());
  }
  return code;
}

int Cache(int argc, char** argv) {
  const std::string verb = argc > 2 ? argv[2] : "";
  if (verb == "save" && argc >= 5) {
    return CacheSave(argv[3], argv[4], argc > 5 ? argv[5] : "DPccp",
                     argc > 6 ? argv[6] : "cout");
  }
  if (verb == "load" && argc >= 4) {
    return CacheLoadOrInspect(argv[3], /*inspect=*/false);
  }
  if (verb == "inspect" && argc >= 4) {
    return CacheLoadOrInspect(argv[3], /*inspect=*/true);
  }
  std::fprintf(stderr,
               "usage: cache save <snapshot> <spec-file|-> [algo] [cost]\n"
               "       cache load <snapshot>\n"
               "       cache inspect <snapshot>\n");
  return 2;
}

/// The live server, published for the signal handlers. RequestStop is
/// async-signal-safe (atomic store + self-pipe write), so the handler
/// body is exactly one permitted call.
serve::WireServer* volatile g_wire_server = nullptr;

extern "C" void HandleDrainSignal(int /*signum*/) {
  serve::WireServer* server = g_wire_server;
  if (server != nullptr) {
    server->RequestStop();
  }
}

/// `serve`: the wire-protocol front end over the batch service. Runs
/// until SIGTERM/SIGINT, then drains gracefully: stop accepting, finish
/// in-flight work, flush every response, save the plan-cache snapshot
/// (when configured), exit 0.
int Serve() {
  Result<serve::ServiceConfig> service_config = serve::ServiceConfigFromEnv();
  if (!service_config.ok()) {
    return Fail(service_config.status(), "serve environment");
  }
  Result<serve::WireServerConfig> server_config = serve::ServerConfigFromEnv();
  if (!server_config.ok()) {
    return Fail(server_config.status(), "serve environment");
  }
  Result<std::unique_ptr<serve::OptimizerService>> service =
      serve::OptimizerService::Create(*service_config);
  if (!service.ok()) {
    return Fail(service.status(), "service start");
  }
  const serve::SnapshotLoadStats loaded = (*service)->LoadStats();
  if (!(*service)->config().snapshot_path.empty()) {
    std::fprintf(stderr, "snapshot load: %s\n", loaded.ToString().c_str());
  }
  Result<std::unique_ptr<serve::WireServer>> server =
      serve::WireServer::Create(*server_config, service->get());
  if (!server.ok()) {
    return Fail(server.status(), "listen");
  }
  std::fprintf(stderr,
               "serving on %s:%u (workers=%d queue=%d conns=%d "
               "io_timeout=%.3gs); SIGTERM drains\n",
               server_config->listen.host.c_str(), (*server)->port(),
               service_config->workers, service_config->queue_depth,
               server_config->max_connections,
               server_config->io_timeout_seconds);
  g_wire_server = server->get();
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
  (*server)->Run();
  g_wire_server = nullptr;
  const serve::WireServer::Stats stats = (*server)->StatsSnapshot();
  // Drain order matters: the event loop has flushed every response, so
  // Shutdown(drain=true) only has the queue tail to finish — and it is
  // what saves the snapshot.
  (*service)->Shutdown(/*drain=*/true);
  std::fprintf(stderr,
               "drained: accepted=%llu responses=%llu protocol_errors=%llu "
               "deadline_closes=%llu overflow_sheds=%llu peer_closes=%llu\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.responses),
               static_cast<unsigned long long>(stats.protocol_errors),
               static_cast<unsigned long long>(stats.deadline_closes),
               static_cast<unsigned long long>(stats.overflow_sheds),
               static_cast<unsigned long long>(stats.peer_closes));
  if (!(*service)->config().snapshot_path.empty()) {
    const Result<serve::SnapshotSaveStats> saved = (*service)->LastSaveStats();
    if (saved.ok()) {
      std::fprintf(stderr, "snapshot save: %s\n", saved->ToString().c_str());
    } else {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   saved.status().ToString().c_str());
    }
  }
  return 0;
}

/// `query --connect`: the explain workflow, served remotely. The spec is
/// parsed and validated locally (same exit codes as `explain`), shipped
/// over the wire, and the response printed in the explain format. The
/// optimization limits travel with the request: JOINOPT_DEADLINE_S
/// becomes the end-to-end deadline (client retry envelope AND server-side
/// queue + optimization bound), JOINOPT_MEMO_BUDGET and JOINOPT_THREADS
/// apply on the server's worker.
int Query(const std::string& connect, const std::string& path,
          const std::string& algo, const std::string& cost) {
  Result<net::Endpoint> endpoint = net::ParseEndpoint(connect);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "--connect: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<QueryGraph> graph = ParseQuerySpecToGraph(*text);
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  // Validate the algorithm/cost names locally so a typo is the same
  // usage error `explain` gives, not a round trip.
  if (!MakeCostModel(cost).ok()) {
    std::fprintf(stderr, "unknown cost model '%s'\n", cost.c_str());
    return 2;
  }
  if (!LookupOrderer(algo).ok()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    return 2;
  }
  const OptimizeOptions options = OptionsFromEnv();
  serve::ServeRequest request;
  request.graph = *graph;
  request.orderer = ResolveAlgorithmName(algo);
  request.cost_model = cost;
  request.memo_entry_budget = options.memo_entry_budget;
  request.deadline_seconds = options.deadline_seconds;
  request.threads = options.threads;
  serve::WireClientConfig client_config;
  client_config.server = *endpoint;
  const Result<double> io_timeout =
      EnvDouble("JOINOPT_SERVE_IO_TIMEOUT_S", client_config.io_timeout_seconds,
                /*require_positive=*/true);
  if (!io_timeout.ok()) {
    return Fail(io_timeout.status(), "limit environment");
  }
  client_config.io_timeout_seconds = *io_timeout;
  serve::WireClient client(client_config);
  const serve::ServeResponse response = client.Call(request);
  if (!response.status.ok()) {
    return Fail(response.status, "query failed");
  }
  if (!response.plan.has_value()) {
    std::fprintf(stderr, "query failed: OK response carried no plan\n");
    return 8;
  }
  std::printf("-- served by %s: %s, cost model %s%s\n\n%s\n", connect.c_str(),
              response.algorithm.c_str(), cost.c_str(),
              response.cache_hit ? " (cache hit)" : "",
              PlanToExplainString(*response.plan, *graph).c_str());
  std::printf("expression: %s\ncost: %.6g  rows: %.6g\n",
              PlanToExpression(*response.plan, *graph).c_str(), response.cost,
              response.cardinality);
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s explain  <spec-file|-> [algo] [cost]\n"
               "  %s hyper    <hyperspec-file|->\n"
               "  %s sql      <catalog-spec-file|-> \"SELECT ...\" [algo]\n"
               "  %s dot      <spec-file|-> [plan|graph]\n"
               "  %s generate <shape> <n> [seed]\n"
               "  %s counters <shape> <n>\n"
               "  %s record   <spec-file|-> [algo] [cost]\n"
               "  %s replay   <bundle-file|->\n"
               "  %s minimize <bundle-file|->\n"
               "  %s list\n"
               "  %s cache    save <snapshot> <spec-file|-> [algo] [cost]\n"
               "  %s cache    load|inspect <snapshot>\n"
               "  %s serve\n"
               "  %s query    --connect HOST:PORT <spec-file|-> [algo] "
               "[cost]\n"
               "flags:  --best-effort  salvage a complete plan from the\n"
               "        partial memo when a limit trips (exit 9, report on\n"
               "        stderr) instead of failing with exit 6\n"
               "limits: JOINOPT_DEADLINE_S=<s> JOINOPT_MEMO_BUDGET=<entries>\n"
               "        JOINOPT_THREADS=<n> (parallel orderers; 0 = auto)\n"
               "        malformed values exit 3 at startup, never fall back\n"
               "serve:  JOINOPT_SERVE_LISTEN=HOST:PORT "
               "JOINOPT_SERVE_MAX_CONNS=<n>\n"
               "        JOINOPT_SERVE_IO_TIMEOUT_S=<s> plus the batch knobs\n"
               "        (JOINOPT_SERVE_WORKERS, JOINOPT_QUEUE_DEPTH, ...)\n"
               "policy: JOINOPT_POLICY=<ladder> (Adaptive; see DESIGN.md)\n"
               "faults: JOINOPT_FAULT_SEED / JOINOPT_FAULT_{ALLOC,TRACE,"
               "DEADLINE,STATS}_AT\n"
               "exit codes: 0 ok, 2 usage, 3 input, 4 catalog, 5 stats,\n"
               "            6 budget, 7 precondition, 8 internal,\n"
               "            9 best-effort plan, 10 replay divergence,\n"
               "            11 snapshot cold start (bad header or stale\n"
               "            generation; skipped corrupt records stay exit 0),\n"
               "            12 server unavailable (query --connect could\n"
               "            not obtain a response)\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace
}  // namespace joinopt

int main(int argc, char** argv) {
  using namespace joinopt;  // NOLINT(build/namespaces) — tool brevity.
  // Strip --best-effort and --connect wherever they appear so the flags
  // compose with every command's positional arguments.
  std::string connect;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--best-effort") {
      g_best_effort = true;
    } else if (std::string(argv[i]) == "--connect") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--connect needs HOST:PORT\n");
        return 2;
      }
      connect = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (argc < 2) {
    return Usage(argv[0]);
  }
  // Validate the fault and limit environments up front: a typo'd
  // JOINOPT_FAULT_* or JOINOPT_{DEADLINE_S,MEMO_BUDGET,THREADS,MAX_INNER}
  // knob must be a visible input error (exit 3), not a silently disarmed
  // injector or a limit quietly parsed as zero behind an otherwise-normal
  // run.
  {
    const Result<testing::FaultConfig> env_fault =
        testing::FaultConfigFromEnv();
    if (!env_fault.ok()) {
      return Fail(env_fault.status(), "fault environment");
    }
    const Status env_limits = ValidateLimitEnv();
    if (!env_limits.ok()) {
      return Fail(env_limits, "limit environment");
    }
  }
  const std::string command = argv[1];
  if (command == "explain" && argc >= 3) {
    return Explain(argv[2], argc > 3 ? argv[3] : "DPccp",
                   argc > 4 ? argv[4] : "cout");
  }
  if (command == "hyper" && argc >= 3) {
    return Hyper(argv[2]);
  }
  if (command == "sql" && argc >= 4) {
    return Sql(argv[2], argv[3], argc > 4 ? argv[4] : "DPccp");
  }
  if (command == "dot" && argc >= 3) {
    return Dot(argv[2], argc > 3 ? argv[3] : "plan");
  }
  if (command == "generate" && argc >= 4) {
    return Generate(argv[2], std::atoi(argv[3]),
                    argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42);
  }
  if (command == "counters" && argc >= 4) {
    return Counters(argv[2], std::atoi(argv[3]));
  }
  if (command == "record" && argc >= 3) {
    return Record(argv[2], argc > 3 ? argv[3] : "DPccp",
                  argc > 4 ? argv[4] : "cout");
  }
  if (command == "replay" && argc >= 3) {
    return Replay(argv[2]);
  }
  if (command == "minimize" && argc >= 3) {
    return Minimize(argv[2]);
  }
  if (command == "cache") {
    return Cache(argc, argv);
  }
  if (command == "serve") {
    return Serve();
  }
  if (command == "query" && argc >= 3) {
    if (connect.empty()) {
      std::fprintf(stderr, "query needs --connect HOST:PORT\n");
      return 2;
    }
    return Query(connect, argv[2], argc > 3 ? argv[3] : "DPccp",
                 argc > 4 ? argv[4] : "cout");
  }
  if (command == "list") {
    return List();
  }
  return Usage(argv[0]);
}
