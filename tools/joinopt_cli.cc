/// joinopt_cli — the library's command-line front end.
///
///   joinopt_cli explain  <spec-file|-> [algo] [cost]   optimize & explain
///   joinopt_cli dot      <spec-file|-> [plan|graph]    Graphviz output
///   joinopt_cli generate <shape> <n> [seed]            emit a query spec
///   joinopt_cli counters <shape> <n>                   measured vs predicted
///
/// shapes: chain cycle star clique
/// algos:  DPccp (default) DPsize DPsub DPhyp TDBasic GOO linear IDP Adaptive
/// costs:  cout (default) bestof hash nlj smj

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "dsl/writer.h"
#include "joinopt.h"

namespace joinopt {
namespace {

Result<std::string> ReadAll(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

Result<QueryShape> ParseShape(const std::string& name) {
  if (name == "chain") return QueryShape::kChain;
  if (name == "cycle") return QueryShape::kCycle;
  if (name == "star") return QueryShape::kStar;
  if (name == "clique") return QueryShape::kClique;
  return Status::InvalidArgument("unknown shape '" + name +
                                 "' (chain|cycle|star|clique)");
}

Result<std::unique_ptr<CostModel>> MakeCostModel(const std::string& name) {
  if (name == "cout") {
    return std::unique_ptr<CostModel>(std::make_unique<CoutCostModel>());
  }
  if (name == "bestof") {
    return std::unique_ptr<CostModel>(
        std::make_unique<BestOfCostModel>(BestOfCostModel::Standard()));
  }
  if (name == "hash") {
    return std::unique_ptr<CostModel>(std::make_unique<HashJoinCostModel>());
  }
  if (name == "nlj") {
    return std::unique_ptr<CostModel>(
        std::make_unique<NestedLoopCostModel>());
  }
  if (name == "smj") {
    return std::unique_ptr<CostModel>(std::make_unique<SortMergeCostModel>());
  }
  return Status::InvalidArgument("unknown cost model '" + name +
                                 "' (cout|bestof|hash|nlj|smj)");
}

Result<std::unique_ptr<JoinOrderer>> MakeOrderer(const std::string& name) {
  if (name == "DPccp") {
    return std::unique_ptr<JoinOrderer>(std::make_unique<DPccp>());
  }
  if (name == "DPsize") {
    return std::unique_ptr<JoinOrderer>(std::make_unique<DPsize>());
  }
  if (name == "DPsub") {
    return std::unique_ptr<JoinOrderer>(std::make_unique<DPsub>());
  }
  if (name == "TDBasic") {
    return std::unique_ptr<JoinOrderer>(std::make_unique<TDBasic>());
  }
  if (name == "GOO") {
    return std::unique_ptr<JoinOrderer>(
        std::make_unique<GreedyOperatorOrdering>());
  }
  if (name == "linear") {
    return std::unique_ptr<JoinOrderer>(std::make_unique<DPsizeLinear>());
  }
  if (name == "IDP") {
    return std::unique_ptr<JoinOrderer>(std::make_unique<IDP1>(8));
  }
  if (name == "Adaptive") {
    return std::unique_ptr<JoinOrderer>(std::make_unique<AdaptiveOptimizer>());
  }
  return Status::InvalidArgument(
      "unknown algorithm '" + name +
      "' (DPccp|DPsize|DPsub|DPhyp|TDBasic|GOO|linear|IDP|Adaptive)");
}

int Explain(const std::string& path, const std::string& algo,
            const std::string& cost) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<QueryGraph> graph = ParseQuerySpecToGraph(*text);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<CostModel>> cost_model = MakeCostModel(cost);
  if (!cost_model.ok()) {
    std::fprintf(stderr, "%s\n", cost_model.status().ToString().c_str());
    return 2;
  }

  // DPhyp runs through the hypergraph lift; everything else through the
  // JoinOrderer interface.
  Result<OptimizationResult> result = Status::Internal("unset");
  if (algo == "DPhyp") {
    const Hypergraph hyper = Hypergraph::FromQueryGraph(*graph);
    result = DPhyp().Optimize(hyper, **cost_model);
  } else {
    Result<std::unique_ptr<JoinOrderer>> orderer = MakeOrderer(algo);
    if (!orderer.ok()) {
      std::fprintf(stderr, "%s\n", orderer.status().ToString().c_str());
      return 2;
    }
    result = (*orderer)->Optimize(*graph, **cost_model);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("-- %s, cost model %s\n\n%s\n", algo.c_str(), cost.c_str(),
              PlanToExplainString(result->plan, *graph).c_str());
  std::printf("expression: %s\ncost: %.6g  rows: %.6g  pairs: %llu\n",
              PlanToExpression(result->plan, *graph).c_str(), result->cost,
              result->cardinality,
              static_cast<unsigned long long>(
                  result->stats.ono_lohman_counter));
  return 0;
}

int Dot(const std::string& path, const std::string& what) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<QueryGraph> graph = ParseQuerySpecToGraph(*text);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  if (what == "graph") {
    std::fputs(QueryGraphToDot(*graph).c_str(), stdout);
    return 0;
  }
  const CoutCostModel cost_model;
  Result<OptimizationResult> result = DPccp().Optimize(*graph, cost_model);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::fputs(PlanToDot(result->plan, *graph).c_str(), stdout);
  return 0;
}

int Generate(const std::string& shape_name, int n, uint64_t seed) {
  Result<QueryShape> shape = ParseShape(shape_name);
  if (!shape.ok()) {
    std::fprintf(stderr, "%s\n", shape.status().ToString().c_str());
    return 2;
  }
  WorkloadConfig config;
  config.seed = seed;
  Result<QueryGraph> graph = MakeShapeQuery(*shape, n, config);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::fputs(WriteQuerySpec(*graph).c_str(), stdout);
  return 0;
}

int Counters(const std::string& shape_name, int n) {
  Result<QueryShape> shape = ParseShape(shape_name);
  if (!shape.ok()) {
    std::fprintf(stderr, "%s\n", shape.status().ToString().c_str());
    return 2;
  }
  if (n < 2 || n > 14) {
    std::fprintf(stderr, "n must be in [2, 14] for the measured run\n");
    return 2;
  }
  Result<QueryGraph> graph = MakeShapeQuery(*shape, n);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const CoutCostModel cost_model;
  const DPsize dpsize;
  const DPsub dpsub;
  const DPccp dpccp;
  std::printf("%s n=%d   #csg=%llu  #ccp=%llu\n", shape_name.c_str(), n,
              static_cast<unsigned long long>(CsgCount(*shape, n)),
              static_cast<unsigned long long>(CcpCountUnordered(*shape, n)));
  std::printf("%-8s  %14s  %14s\n", "algo", "measured", "predicted");
  const struct {
    const JoinOrderer* orderer;
    uint64_t predicted;
  } rows[] = {
      {&dpsize, PredictedInnerCounterDPsize(*shape, n)},
      {&dpsub, PredictedInnerCounterDPsub(*shape, n)},
      {&dpccp, PredictedInnerCounterDPccp(*shape, n)},
  };
  for (const auto& row : rows) {
    Result<OptimizationResult> result =
        row.orderer->Optimize(*graph, cost_model);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed\n",
                   std::string(row.orderer->name()).c_str());
      return 1;
    }
    std::printf("%-8s  %14llu  %14llu%s\n",
                std::string(row.orderer->name()).c_str(),
                static_cast<unsigned long long>(result->stats.inner_counter),
                static_cast<unsigned long long>(row.predicted),
                result->stats.inner_counter == row.predicted ? ""
                                                             : "  MISMATCH");
  }
  return 0;
}

int Sql(const std::string& catalog_path, const std::string& query,
        const std::string& algo) {
  Result<std::string> text = ReadAll(catalog_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<Catalog> catalog = ParseQuerySpec(*text);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog error: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  Result<QueryGraph> graph = ParseSqlJoinQuery(query, *catalog);
  if (!graph.ok()) {
    std::fprintf(stderr, "SQL error: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<JoinOrderer>> orderer = MakeOrderer(algo);
  if (!orderer.ok()) {
    std::fprintf(stderr, "%s\n", orderer.status().ToString().c_str());
    return 2;
  }
  const BestOfCostModel cost_model = BestOfCostModel::Standard();
  Result<OptimizationResult> result =
      (*orderer)->Optimize(*graph, cost_model);
  if (!result.ok()) {
    std::fprintf(stderr, "optimization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\nexpression: %s\ncost: %.6g  rows: %.6g\n",
              PlanToExplainString(result->plan, *graph).c_str(),
              PlanToExpression(result->plan, *graph).c_str(), result->cost,
              result->cardinality);
  return 0;
}

int Hyper(const std::string& path) {
  Result<std::string> text = ReadAll(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<Hypergraph> graph = ParseHypergraphSpec(*text);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const CoutCostModel cost_model;
  Result<OptimizationResult> result = DPhyp().Optimize(*graph, cost_model);
  if (!result.ok()) {
    std::fprintf(stderr, "DPhyp failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("-- DPhyp over %d relations, %d (hyper)edges\n\n%s\n"
              "expression: %s\ncost: %.6g  pairs: %llu\n",
              graph->relation_count(), graph->edge_count(),
              PlanToExplainString(result->plan, *graph).c_str(),
              PlanToExpression(result->plan, *graph).c_str(), result->cost,
              static_cast<unsigned long long>(
                  result->stats.ono_lohman_counter));
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s explain  <spec-file|-> [algo] [cost]\n"
               "  %s hyper    <hyperspec-file|->\n"
               "  %s sql      <catalog-spec-file|-> \"SELECT ...\" [algo]\n"
               "  %s dot      <spec-file|-> [plan|graph]\n"
               "  %s generate <shape> <n> [seed]\n"
               "  %s counters <shape> <n>\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace
}  // namespace joinopt

int main(int argc, char** argv) {
  using namespace joinopt;  // NOLINT(build/namespaces) — tool brevity.
  if (argc < 2) {
    return Usage(argv[0]);
  }
  const std::string command = argv[1];
  if (command == "explain" && argc >= 3) {
    return Explain(argv[2], argc > 3 ? argv[3] : "DPccp",
                   argc > 4 ? argv[4] : "cout");
  }
  if (command == "hyper" && argc >= 3) {
    return Hyper(argv[2]);
  }
  if (command == "sql" && argc >= 4) {
    return Sql(argv[2], argv[3], argc > 4 ? argv[4] : "DPccp");
  }
  if (command == "dot" && argc >= 3) {
    return Dot(argv[2], argc > 3 ? argv[3] : "plan");
  }
  if (command == "generate" && argc >= 4) {
    return Generate(argv[2], std::atoi(argv[3]),
                    argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42);
  }
  if (command == "counters" && argc >= 4) {
    return Counters(argv[2], std::atoi(argv[3]));
  }
  return Usage(argv[0]);
}
