/// joinopt_fuzz — the crash-safety differential fuzzer.
///
///   joinopt_fuzz [--iters N] [--seed S] [--verbose]
///               [--repro-dir DIR] [--max-repros N]
///
/// Each iteration draws a random connected query graph (chain, cycle,
/// star, clique, snowflake, grid, or random-connected; 2..10 relations)
/// and puts it through one of six rounds, cycling deterministically:
///
///   plain        legal statistics. DPsize, DPsub, DPccp, DPhyp, the
///                parallel variants, and (under Cout) DPconv must all
///                succeed, agree on the optimal cost, and produce
///                PlanValidator-clean trees. DPconv's cost must equal
///                DPccp's BIT FOR BIT below the saturation regime; under
///                non-Cout models DPconv must instead refuse with a typed
///                kInvalidArgument.
///   extreme      legal-but-extreme statistics (cardinalities up to
///                1e305, selectivities down to 1e-305) that overflow
///                naive arithmetic immediately. Same oracle as `plain`,
///                except exact cross-algorithm cost equality is relaxed
///                once costs saturate at the ceiling (different join
///                orders reach a set first with different clamped
///                cardinalities, so tie-breaking legitimately diverges);
///                what remains asserted is: finite, validator-clean,
///                never inf/NaN.
///   degenerate   one illegal statistic (NaN/inf/0/negative cardinality,
///                out-of-range selectivity) planted behind the builders'
///                backs. Every algorithm must refuse with
///                kDegenerateStatistics — no crash, no garbage plan.
///   fault-alloc  kArenaAlloc scheduled: populating some memo entry
///                fails. The run must end in success (fault scheduled
///                past the run's length) or a structured
///                kInternal/kBudgetExceeded — and the same context must
///                produce the correct optimal plan on a subsequent
///                un-faulted ResetForRerun.
///   fault-clock  kDeadline scheduled at an exact governor tick; same
///                oracle as fault-alloc.
///   fault-trace  a TraceSink that throws on a scheduled callback; the
///                library must contain the exception as kInternal, and
///                the context must again be reusable.
///
/// Every 7th iteration additionally round-trips the graph through the
/// DSL (WriteQuerySpec -> ParseQuerySpec -> BuildQueryGraph) with the
/// kAdversarialStats fault armed: the catalog validates clean, then
/// hands the optimizer a corrupted graph, which the optimizer prologue
/// must reject as kDegenerateStatistics.
///
/// Every 11th iteration runs a snapshot-mutation round against the
/// plan-cache persistence layer (serve/snapshot.h): a pristine snapshot
/// is built once, then each round loads a randomly mutated variant
/// (truncation, single-bit flip, duplicated record region, hostile
/// length field). The loader must return a TYPED outcome — never a
/// Status error, never a crash — and any record that survives into the
/// cache must carry its original bit-exact OutcomeSignature. The final
/// summary reports "snapshot fuzz: N mutations, M corrupt records
/// skipped"; CI requires M >= 1 (the skip path actually ran).
///
/// Every 13th iteration runs a wire-frame mutation round against the
/// serving layer's wire codec (serve/wire.h): a pristine encoded request
/// frame is built once, then each round decodes a mutated variant
/// (truncation, single-bit flip, hostile length inflation). The decoder
/// must return a TYPED outcome — kCorrupt with a detail, kIncomplete,
/// or a whole frame — never a crash, and any frame that survives must
/// be bit-identical to the pristine one through a full decode +
/// re-encode cycle. The summary line "wire fuzz: N mutations, R
/// rejected, ..." is grep-guarded in CI (R >= 1: the reject path ran).
///
/// With --repro-dir, the fuzzer doubles as a flight recorder: every
/// fault-mode run whose optimization failed, and every violated oracle,
/// is captured as a self-contained repro-NNN.joinopt bundle (capped by
/// --max-repros, default 20) that `joinopt_cli replay` re-executes
/// bit-for-bit and `joinopt_cli minimize` shrinks. The fuzzer never arms
/// wall-clock deadlines — all its interruptions are fault-point driven —
/// so its bundles replay deterministically.
///
/// Exit code 0 when all iterations pass; 1 on the first violated oracle
/// (with a reproducer line: seed + iteration). Runs under ASan/UBSan in
/// tools/ci.sh.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/outcome.h"
#include "core/policy.h"
#include "cost/saturation.h"
#include "joinopt.h"
#include "serve/fingerprint.h"
#include "serve/plan_cache.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "testing/adversarial.h"
#include "testing/fault_injection.h"
#include "testing/repro.h"
#include "testing/workloads.h"

namespace joinopt {
namespace {

const char* const kAlgorithms[] = {"DPsize",    "DPsub",     "DPccp",
                                   "DPhyp",     "DPsizePar", "DPsubPar",
                                   "DPconv"};
constexpr int kAlgorithmCount = 7;
/// Index of DPccp / DPconv in kAlgorithms, for the bit-identity oracle.
constexpr int kDPccpIndex = 2;
constexpr int kDPconvIndex = 6;

/// Costs at or beyond this magnitude are treated as "saturated": the
/// ceiling clamp makes the optimum depend on enumeration order, so the
/// differential oracle downgrades from equality to finiteness.
constexpr double kSaturationRegime = 1e250;

struct FuzzFailure {
  bool failed = false;
  std::string detail;
};

/// Flight-recorder state (--repro-dir / --max-repros).
std::string g_repro_dir;
int g_max_repros = 20;
int g_repros_written = 0;

/// Writes `bundle` as the next repro-NNN.joinopt artifact. A bundle that
/// arrives without an expectation gets one from a single replay here, so
/// every emitted artifact replays clean unless the library itself is
/// non-deterministic — which is exactly what CI's replay stage detects.
void EmitRepro(testing::ReproBundle bundle) {
  if (g_repro_dir.empty() || g_repros_written >= g_max_repros) {
    return;
  }
  if (!bundle.has_expected) {
    const Result<OutcomeSignature> observed = testing::ReplayBundle(bundle);
    if (observed.ok()) {
      bundle.expected = *observed;
      bundle.has_expected = true;
    }
  }
  char path[4096];
  std::snprintf(path, sizeof(path), "%s/repro-%03d.joinopt",
                g_repro_dir.c_str(), g_repros_written);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "joinopt_fuzz: cannot write %s\n", path);
    return;
  }
  out << testing::WriteReproBundle(bundle);
  ++g_repros_written;
  std::fprintf(stderr, "joinopt_fuzz: captured %s\n", path);
}

#define FUZZ_CHECK(cond, ...)                                  \
  do {                                                         \
    if (!(cond)) {                                             \
      char fuzz_msg_[512];                                     \
      std::snprintf(fuzz_msg_, sizeof(fuzz_msg_), __VA_ARGS__); \
      failure->failed = true;                                  \
      failure->detail = fuzz_msg_;                             \
      return;                                                  \
    }                                                          \
  } while (false)

/// The differential oracle: all four algorithms succeed, their plans
/// validate, and their costs agree (up to saturation).
void CheckAgreement(const QueryGraph& graph, const CostModel& cost_model,
                    FuzzFailure* failure) {
  const bool cout_model = cost_model.name() == "Cout";
  double costs[kAlgorithmCount];
  bool ran[kAlgorithmCount] = {};
  for (int a = 0; a < kAlgorithmCount; ++a) {
    const JoinOrderer* orderer = OptimizerRegistry::Get(kAlgorithms[a]);
    FUZZ_CHECK(orderer != nullptr, "%s missing from registry", kAlgorithms[a]);
    Result<OptimizationResult> result = orderer->Optimize(graph, cost_model);
    if (a == kDPconvIndex && !cout_model) {
      // DPconv's contract: any cost model other than Cout is refused
      // typed at entry — never a silently suboptimal plan.
      FUZZ_CHECK(!result.ok() &&
                     result.status().code() == StatusCode::kInvalidArgument,
                 "DPconv under %s: want typed InvalidArgument, got %s",
                 std::string(cost_model.name()).c_str(),
                 result.ok() ? "a plan" : result.status().ToString().c_str());
      continue;
    }
    FUZZ_CHECK(result.ok(), "%s failed: %s", kAlgorithms[a],
               result.status().ToString().c_str());
    FUZZ_CHECK(std::isfinite(result->cost) && result->cost <= kCostCeiling,
               "%s produced non-finite or above-ceiling cost %g",
               kAlgorithms[a], result->cost);
    FUZZ_CHECK(std::isfinite(result->cardinality),
               "%s produced non-finite cardinality %g", kAlgorithms[a],
               result->cardinality);
    PlanValidationOptions validation;
    validation.relative_tolerance = 1e-6;
    const Status valid =
        ValidatePlan(result->plan, graph, cost_model, validation);
    FUZZ_CHECK(valid.ok(), "%s plan failed validation: %s", kAlgorithms[a],
               valid.ToString().c_str());
    costs[a] = result->cost;
    ran[a] = true;
  }
  double min_cost = costs[0];
  double max_cost = costs[0];
  for (int a = 1; a < kAlgorithmCount; ++a) {
    if (!ran[a]) {
      continue;
    }
    min_cost = std::min(min_cost, costs[a]);
    max_cost = std::max(max_cost, costs[a]);
  }
  if (cout_model && ran[kDPconvIndex] && min_cost < kSaturationRegime) {
    // Below saturation the subset convolution and the csg-cmp sweep must
    // land on the same double, bit for bit: per-set estimates are
    // canonical (numbering-invariant) and both price the same partition
    // space through the same saturated arithmetic.
    FUZZ_CHECK(costs[kDPconvIndex] == costs[kDPccpIndex],
               "DPconv cost %.17g != DPccp cost %.17g (bit-identity "
               "contract)",
               costs[kDPconvIndex], costs[kDPccpIndex]);
  }
  if (min_cost < kSaturationRegime) {
    // Exact regime: all enumerations explore the same bushy
    // cross-product-free space, so their optima must coincide.
    const double rel = (max_cost - min_cost) / std::max(min_cost, 1e-300);
    if (rel > 1e-6) {
      std::string breakdown;
      for (int a = 0; a < kAlgorithmCount; ++a) {
        if (!ran[a]) {
          continue;
        }
        char cell[96];
        std::snprintf(cell, sizeof(cell), "%s%s %.17g",
                      breakdown.empty() ? "" : " ", kAlgorithms[a], costs[a]);
        breakdown += cell;
      }
      FUZZ_CHECK(false,
                 "cost disagreement: min %.17g max %.17g (rel %.3g) [%s]",
                 min_cost, max_cost, rel, breakdown.c_str());
    }
  }
}

/// Degenerate oracle: every algorithm refuses with kDegenerateStatistics.
void CheckAllReject(const QueryGraph& graph, const CostModel& cost_model,
                    FuzzFailure* failure) {
  for (int a = 0; a < kAlgorithmCount; ++a) {
    const JoinOrderer* orderer = OptimizerRegistry::Get(kAlgorithms[a]);
    Result<OptimizationResult> result = orderer->Optimize(graph, cost_model);
    FUZZ_CHECK(!result.ok(),
               "%s accepted a graph with a corrupted statistic",
               kAlgorithms[a]);
    FUZZ_CHECK(result.status().code() == StatusCode::kDegenerateStatistics,
               "%s rejected corrupted stats with %s, want "
               "DegenerateStatistics",
               kAlgorithms[a], result.status().ToString().c_str());
  }
}

/// Fault-injection oracle: the faulted run either completes or fails
/// with the structured status for its fault point, and the SAME context
/// then produces the correct plan on an un-faulted rerun.
void CheckFaultedRun(const QueryGraph& graph, const CostModel& cost_model,
                     const char* cost_model_name, testing::FaultPoint point,
                     Random& rng, uint64_t seed, uint64_t iteration,
                     FuzzFailure* failure) {
  int pick = static_cast<int>(rng.Uniform(kAlgorithmCount));
  if (pick == kDPconvIndex && std::strcmp(cost_model_name, "cout") != 0) {
    // DPconv refuses non-Cout models at entry, before any fault point can
    // fire; fault coverage would be vacuous. Deterministic substitution
    // keeps the draw sequence (and thus every later iteration) stable.
    pick = kDPccpIndex;
  }
  const JoinOrderer* orderer = OptimizerRegistry::Get(kAlgorithms[pick]);
  testing::FaultConfig fault;
  fault.at(point) = 1 + rng.Uniform(256);

  testing::ThrowingTraceSink sink;
  OptimizeOptions options;
  if (point == testing::FaultPoint::kTraceSink) {
    options.trace = &sink;
  }

  std::unique_ptr<OptimizerContext> ctx;
  Result<OptimizationResult> faulted = Status::Internal("never ran");
  {
    testing::ScopedFaultInjection scoped(fault);
    // Construct inside the scope: the governor caches the injector's
    // armed state at construction.
    ctx = std::make_unique<OptimizerContext>(graph, cost_model, options);
    faulted = orderer->Optimize(*ctx);
  }
  if (!faulted.ok()) {
    // A fault actually interrupted this run: capture it with the observed
    // signature stamped from the run itself, so the artifact's replay
    // must reproduce these exact partial counters.
    testing::ReproBundle bundle = testing::MakeReproBundle(
        graph, orderer->name(), cost_model_name, options, fault,
        point == testing::FaultPoint::kTraceSink, seed,
        "joinopt_fuzz fault-mode capture, iteration " +
            std::to_string(iteration));
    bundle.expected = ExtractOutcomeSignature(faulted, ctx->stats());
    bundle.has_expected = true;
    EmitRepro(std::move(bundle));
    const StatusCode code = faulted.status().code();
    FUZZ_CHECK(code == StatusCode::kInternal ||
                   code == StatusCode::kBudgetExceeded,
               "%s under %s fault failed with %s, want Internal or "
               "BudgetExceeded",
               std::string(orderer->name()).c_str(),
               std::string(testing::FaultPointName(point)).c_str(),
               faulted.status().ToString().c_str());
  }

  // Re-entrancy: the interrupted context, reset, must match a fresh one.
  ctx->ResetForRerun();
  Result<OptimizationResult> rerun = orderer->Optimize(*ctx);
  FUZZ_CHECK(rerun.ok(), "%s rerun after %s fault failed: %s",
             std::string(orderer->name()).c_str(),
             std::string(testing::FaultPointName(point)).c_str(),
             rerun.status().ToString().c_str());
  Result<OptimizationResult> baseline =
      orderer->Optimize(graph, cost_model);
  FUZZ_CHECK(baseline.ok(), "%s baseline failed: %s",
             std::string(orderer->name()).c_str(),
             baseline.status().ToString().c_str());
  FUZZ_CHECK(rerun->cost == baseline->cost,
             "%s rerun cost %.17g != fresh-context cost %.17g after %s fault",
             std::string(orderer->name()).c_str(), rerun->cost,
             baseline->cost,
             std::string(testing::FaultPointName(point)).c_str());
}

/// Snapshot-mutation fuzz state: the pristine snapshot bytes (built
/// once), the original signatures for the poisoning check, and the
/// global tallies the summary line reports.
struct SnapshotFuzz {
  bool ready = false;
  std::string path;
  std::string pristine;
  std::vector<std::pair<std::string, OutcomeSignature>> originals;
  uint64_t mutations = 0;
  uint64_t corrupt_skipped = 0;
};
SnapshotFuzz g_snapshot_fuzz;

/// Builds the pristine snapshot: three clean DPccp plans over fixed
/// seeds, inserted into a bare cache and saved to a temp file.
void InitSnapshotFuzz(uint64_t seed, FuzzFailure* failure) {
  SnapshotFuzz& fuzz = g_snapshot_fuzz;
  serve::PlanCache cache{serve::PlanCacheConfig{}};
  const CoutCostModel cost_model;
  for (uint64_t draw = 0; draw < 3; ++draw) {
    Random rng(seed * 40503 + draw);
    std::string family;
    Result<QueryGraph> graph = testing::DrawWorkloadGraph(rng, &family);
    FUZZ_CHECK(graph.ok(), "snapshot fuzz: generator failed: %s",
               graph.status().ToString().c_str());
    Result<serve::CanonicalQuery> canonical =
        serve::CanonicalizeQuery(*graph, "DPccp", "cout");
    FUZZ_CHECK(canonical.ok(), "snapshot fuzz: canonicalization failed: %s",
               canonical.status().ToString().c_str());
    OptimizerContext ctx(canonical->graph, cost_model);
    Result<DegradationPolicy> policy = DegradationPolicy::Parse("DPccp");
    FUZZ_CHECK(policy.ok(), "snapshot fuzz: policy parse failed: %s",
               policy.status().ToString().c_str());
    Result<OptimizationResult> result = RunDegradationPolicy(*policy, ctx);
    FUZZ_CHECK(result.ok(), "snapshot fuzz: optimization failed: %s",
               result.status().ToString().c_str());
    serve::CachedPlan entry;
    entry.key = canonical->key;
    entry.hash = canonical->hash;
    entry.generation = cache.generation();
    entry.signature = ExtractOutcomeSignature(result, ctx.stats());
    entry.cost = result->cost;
    entry.cardinality = result->cardinality;
    entry.algorithm = result->stats.algorithm;
    entry.recompute_seconds = result->stats.elapsed_seconds;
    entry.plan = result->plan;
    fuzz.originals.emplace_back(canonical->key, entry.signature);
    FUZZ_CHECK(cache.Insert(std::move(entry)) == serve::CacheInsert::kInserted,
               "snapshot fuzz: pristine insert refused");
  }
  fuzz.path = (std::filesystem::temp_directory_path() /
               ("joinopt_fuzz_" + std::to_string(seed) + ".snap"))
                  .string();
  Result<serve::SnapshotSaveStats> saved =
      serve::SaveSnapshot(cache, fuzz.path);
  FUZZ_CHECK(saved.ok(), "snapshot fuzz: save failed: %s",
             saved.status().ToString().c_str());
  std::ifstream in(fuzz.path, std::ios::binary);
  fuzz.pristine.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  FUZZ_CHECK(fuzz.pristine.size() > 36,
             "snapshot fuzz: pristine snapshot too small (%zu bytes)",
             fuzz.pristine.size());
  fuzz.ready = true;
}

/// One snapshot-mutation round: corrupt the pristine bytes one way,
/// load, and hold the corruption-tolerance contract — typed outcome
/// only, and whatever survives replays its original signature.
void CheckSnapshotMutation(Random& rng, FuzzFailure* failure) {
  SnapshotFuzz& fuzz = g_snapshot_fuzz;
  std::string mutant = fuzz.pristine;
  const char* what = "";
  switch (rng.Uniform(4)) {
    case 0:
      mutant.resize(rng.Uniform(mutant.size() + 1));
      what = "truncation";
      break;
    case 1: {
      const size_t offset = static_cast<size_t>(rng.Uniform(mutant.size()));
      mutant[offset] = static_cast<char>(
          mutant[offset] ^ (1 << rng.Uniform(8)));
      what = "bit flip";
      break;
    }
    case 2:
      mutant += mutant.substr(36);
      what = "duplicated records";
      break;
    default:
      mutant = mutant.substr(0, 36) + std::string("\xff\xff\xff\xff", 4) +
               std::string(32, 'A');
      what = "hostile length";
      break;
  }
  {
    std::ofstream out(fuzz.path, std::ios::trunc | std::ios::binary);
    out.write(mutant.data(),
              static_cast<std::streamsize>(mutant.size()));
  }
  serve::PlanCache cache{serve::PlanCacheConfig{}};
  Result<serve::SnapshotLoadStats> loaded =
      serve::LoadSnapshot(cache, fuzz.path);
  ++fuzz.mutations;
  FUZZ_CHECK(loaded.ok(), "snapshot %s: untyped load error: %s", what,
             loaded.status().ToString().c_str());
  fuzz.corrupt_skipped += loaded->skipped_corrupt;
  for (const auto& [key, signature] : fuzz.originals) {
    const serve::PlanCache::LookupResult found =
        cache.Lookup(serve::FingerprintHash(key), key);
    if (found.outcome == serve::CacheLookup::kHit) {
      FUZZ_CHECK(found.entry->signature == signature,
                 "snapshot %s: POISONED survivor for key %s", what,
                 key.c_str());
    }
  }
}

/// Wire-frame mutation fuzz state (serve/wire.h): the pristine encoded
/// request (built once) and the outcome tallies the summary reports.
struct WireFuzz {
  bool ready = false;
  std::string payload;   ///< canonical request payload
  std::string pristine;  ///< the full encoded frame
  uint64_t mutations = 0;
  uint64_t rejected = 0;    ///< typed kCorrupt outcomes
  uint64_t incomplete = 0;  ///< typed kIncomplete (streaming "need more")
  uint64_t survivors = 0;   ///< frames that decoded whole
};
WireFuzz g_wire_fuzz;

/// Builds the pristine wire frame and proves the codec's bit-identity
/// contract on it: decode(encode(x)) == x at both the frame and the
/// payload grammar layer.
void InitWireFuzz(uint64_t seed, FuzzFailure* failure) {
  WireFuzz& fuzz = g_wire_fuzz;
  Random rng(seed * 52859 + 1);
  std::string family;
  Result<QueryGraph> graph = testing::DrawWorkloadGraph(rng, &family);
  FUZZ_CHECK(graph.ok(), "wire fuzz: generator failed: %s",
             graph.status().ToString().c_str());
  serve::ServeRequest request;
  request.graph = std::move(*graph);
  request.orderer = "DPccp";
  request.cost_model = "cout";
  request.memo_entry_budget = 12345;
  request.deadline_seconds = 0.25;
  request.threads = 2;
  fuzz.payload = serve::EncodeRequestPayload(request);
  fuzz.pristine = serve::EncodeFrame(serve::FrameType::kRequest, fuzz.payload);
  const serve::FrameDecodeResult decoded = serve::DecodeFrame(fuzz.pristine);
  FUZZ_CHECK(decoded.outcome == serve::FrameDecode::kFrame &&
                 decoded.frame.payload == fuzz.payload &&
                 decoded.consumed == fuzz.pristine.size(),
             "wire fuzz: pristine frame does not round-trip");
  Result<serve::ServeRequest> round =
      serve::DecodeRequestPayload(fuzz.payload);
  FUZZ_CHECK(round.ok(), "wire fuzz: pristine payload decode failed: %s",
             round.status().ToString().c_str());
  FUZZ_CHECK(serve::EncodeRequestPayload(*round) == fuzz.payload,
             "wire fuzz: canonical re-encode diverged from the pristine "
             "payload");
  fuzz.ready = true;
}

/// One wire-mutation round: corrupt the pristine frame one way and hold
/// the decode contract — a typed outcome (kCorrupt with a detail,
/// kIncomplete, or a whole frame), never a crash, and any surviving
/// frame is bit-identical to the pristine one through a full
/// decode + re-encode cycle.
void CheckWireMutation(Random& rng, FuzzFailure* failure) {
  WireFuzz& fuzz = g_wire_fuzz;
  std::string mutant = fuzz.pristine;
  const char* what = "";
  switch (rng.Uniform(3)) {
    case 0:
      mutant.resize(rng.Uniform(mutant.size() + 1));
      what = "truncation";
      break;
    case 1: {
      const size_t offset = static_cast<size_t>(rng.Uniform(mutant.size()));
      mutant[offset] =
          static_cast<char>(mutant[offset] ^ (1 << rng.Uniform(8)));
      what = "bit flip";
      break;
    }
    default:
      // Hostile length: a header that promises 4 GiB must be rejected
      // at the ceiling, never allocated or waited for.
      for (int i = 6; i <= 9; ++i) {
        mutant[static_cast<size_t>(i)] = static_cast<char>(0xff);
      }
      what = "length inflation";
      break;
  }
  ++fuzz.mutations;
  const serve::FrameDecodeResult decoded = serve::DecodeFrame(mutant);
  switch (decoded.outcome) {
    case serve::FrameDecode::kCorrupt:
      ++fuzz.rejected;
      FUZZ_CHECK(!decoded.detail.empty(),
                 "wire %s: kCorrupt without a detail string", what);
      break;
    case serve::FrameDecode::kIncomplete:
      // Truncations land here by design: a prefix of a valid frame is
      // indistinguishable from a slow writer mid-frame.
      ++fuzz.incomplete;
      break;
    case serve::FrameDecode::kFrame: {
      ++fuzz.survivors;
      FUZZ_CHECK(decoded.frame.payload == fuzz.payload,
                 "wire %s: surviving frame's payload is not bit-identical "
                 "to the pristine one",
                 what);
      Result<serve::ServeRequest> round =
          serve::DecodeRequestPayload(decoded.frame.payload);
      FUZZ_CHECK(round.ok() &&
                     serve::EncodeRequestPayload(*round) == fuzz.payload,
                 "wire %s: survivor re-encode diverged", what);
      break;
    }
  }
}

/// Catalog round trip with the kAdversarialStats point armed: validation
/// passes, the handed-out graph is corrupted, the optimizer prologue
/// must catch it.
void CheckCatalogStatsFault(const QueryGraph& graph,
                            const CostModel& cost_model,
                            FuzzFailure* failure) {
  Result<Catalog> catalog = ParseQuerySpec(WriteQuerySpec(graph));
  FUZZ_CHECK(catalog.ok(), "spec round trip failed: %s",
             catalog.status().ToString().c_str());
  testing::FaultConfig fault;
  fault.at(testing::FaultPoint::kAdversarialStats) = 1;
  testing::ScopedFaultInjection scoped(fault);
  Result<QueryGraph> corrupted = catalog->BuildQueryGraph();
  FUZZ_CHECK(corrupted.ok(),
             "BuildQueryGraph failed under stats fault (validation runs "
             "before corruption): %s",
             corrupted.status().ToString().c_str());
  CheckAllReject(*corrupted, cost_model, failure);
}

int Run(uint64_t seed, uint64_t iterations, bool verbose) {
  const CoutCostModel cout_model;
  const BestOfCostModel bestof_model = BestOfCostModel::Standard();
  uint64_t mode_counts[6] = {0, 0, 0, 0, 0, 0};
  static const char* const kModeNames[6] = {
      "plain",       "extreme",     "degenerate",
      "fault-alloc", "fault-clock", "fault-trace"};

  for (uint64_t i = 0; i < iterations; ++i) {
    Random rng(seed * 1000003 + i);
    std::string family;
    Result<QueryGraph> drawn = testing::DrawWorkloadGraph(rng, &family);
    if (!drawn.ok()) {
      std::fprintf(stderr,
                   "iteration %" PRIu64 " (seed %" PRIu64
                   "): generator failed: %s\n",
                   i, seed, drawn.status().ToString().c_str());
      return 1;
    }
    QueryGraph graph = std::move(*drawn);
    // Alternate cost models so both linear (Cout) and operator-min
    // (BestOf) accumulation go through the saturation path.
    const char* const cost_model_name = (i % 2 == 0) ? "cout" : "bestof";
    const CostModel& cost_model =
        (i % 2 == 0) ? static_cast<const CostModel&>(cout_model)
                     : static_cast<const CostModel&>(bestof_model);

    const int mode = static_cast<int>(i % 6);
    ++mode_counts[mode];
    FuzzFailure failure;
    switch (mode) {
      case 0:
        CheckAgreement(graph, cost_model, &failure);
        break;
      case 1:
        testing::ApplyExtremeStatistics(graph, rng);
        CheckAgreement(graph, cost_model, &failure);
        break;
      case 2:
        testing::CorruptOneStatistic(graph, rng);
        CheckAllReject(graph, cost_model, &failure);
        break;
      case 3:
        CheckFaultedRun(graph, cost_model, cost_model_name,
                        testing::FaultPoint::kArenaAlloc, rng, seed, i,
                        &failure);
        break;
      case 4:
        CheckFaultedRun(graph, cost_model, cost_model_name,
                        testing::FaultPoint::kDeadline, rng, seed, i,
                        &failure);
        break;
      default:
        CheckFaultedRun(graph, cost_model, cost_model_name,
                        testing::FaultPoint::kTraceSink, rng, seed, i,
                        &failure);
        break;
    }
    if (!failure.failed && mode != 2 && i % 7 == 0) {
      CheckCatalogStatsFault(graph, cost_model, &failure);
    }
    if (!failure.failed && i % 11 == 3) {
      if (!g_snapshot_fuzz.ready) {
        InitSnapshotFuzz(seed, &failure);
      }
      if (!failure.failed) {
        CheckSnapshotMutation(rng, &failure);
      }
    }
    if (!failure.failed && i % 13 == 5) {
      if (!g_wire_fuzz.ready) {
        InitWireFuzz(seed, &failure);
      }
      if (!failure.failed) {
        CheckWireMutation(rng, &failure);
      }
    }
    if (failure.failed) {
      std::fprintf(stderr,
                   "FAIL iteration %" PRIu64 " mode=%s family=%s n=%d "
                   "(reproduce: joinopt_fuzz --seed %" PRIu64
                   " --iters %" PRIu64 ")\n  %s\n",
                   i, kModeNames[mode], family.c_str(),
                   graph.relation_count(), seed, i + 1,
                   failure.detail.c_str());
      // Oracle violation: capture the iteration's query (mutations and
      // all) so the failure ships as a bundle, not just a seed. The
      // expectation is filled by one replay at emit time.
      EmitRepro(testing::MakeReproBundle(
          graph, "DPccp", cost_model_name, OptimizeOptions(),
          testing::FaultConfig(), /*throwing_trace=*/false, seed,
          "joinopt_fuzz oracle failure, iteration " + std::to_string(i) +
              ", mode " + kModeNames[mode] + ": " + failure.detail));
      return 1;
    }
    if (verbose && (i + 1) % 100 == 0) {
      std::fprintf(stderr, "... %" PRIu64 "/%" PRIu64 " iterations\n", i + 1,
                   iterations);
    }
  }
  if (!g_snapshot_fuzz.path.empty()) {
    std::error_code ec;
    std::filesystem::remove(g_snapshot_fuzz.path, ec);
  }
  std::printf("joinopt_fuzz: %" PRIu64
              " iterations clean (seed %" PRIu64
              "; plain %" PRIu64 ", extreme %" PRIu64 ", degenerate %" PRIu64
              ", fault-alloc %" PRIu64 ", fault-clock %" PRIu64
              ", fault-trace %" PRIu64 ")\n",
              iterations, seed, mode_counts[0], mode_counts[1],
              mode_counts[2], mode_counts[3], mode_counts[4],
              mode_counts[5]);
  std::printf("snapshot fuzz: %" PRIu64 " mutations, %" PRIu64
              " corrupt records skipped\n",
              g_snapshot_fuzz.mutations, g_snapshot_fuzz.corrupt_skipped);
  std::printf("wire fuzz: %" PRIu64 " mutations, %" PRIu64 " rejected, %"
              PRIu64 " incomplete, %" PRIu64 " survivors\n",
              g_wire_fuzz.mutations, g_wire_fuzz.rejected,
              g_wire_fuzz.incomplete, g_wire_fuzz.survivors);
  return 0;
}

}  // namespace
}  // namespace joinopt

int main(int argc, char** argv) {
  uint64_t iterations = 500;
  uint64_t seed = 20060912;  // VLDB 2006 session date; arbitrary but fixed.
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--repro-dir") == 0 && i + 1 < argc) {
      joinopt::g_repro_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--max-repros") == 0 && i + 1 < argc) {
      joinopt::g_max_repros =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--iters N] [--seed S] [--verbose]\n"
                   "          [--repro-dir DIR] [--max-repros N]\n",
                   argv[0]);
      return 2;
    }
  }
  // A typo'd JOINOPT_FAULT_* or limit knob must abort the harness, not
  // silently fuzz without faults (or with a limit parsed as zero).
  const joinopt::Result<joinopt::testing::FaultConfig> env_fault =
      joinopt::testing::FaultConfigFromEnv();
  if (!env_fault.ok()) {
    std::fprintf(stderr, "joinopt_fuzz: %s\n",
                 env_fault.status().ToString().c_str());
    return 2;
  }
  const joinopt::Status env_limits = joinopt::ValidateLimitEnv();
  if (!env_limits.ok()) {
    std::fprintf(stderr, "joinopt_fuzz: %s\n", env_limits.ToString().c_str());
    return 2;
  }
  if (!joinopt::g_repro_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(joinopt::g_repro_dir, ec);
    if (ec) {
      std::fprintf(stderr, "joinopt_fuzz: cannot create --repro-dir %s: %s\n",
                   joinopt::g_repro_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }
  return joinopt::Run(seed, iterations, verbose);
}
