/// joinopt_soak — the concurrent anytime-optimization soak harness.
///
///   joinopt_soak [--threads N] [--queries N] [--seed S] [--verbose]
///                [--repro-dir DIR] [--service]
///                [--crash-recovery] [--cycles N] [--snapshot PATH]
///
/// N worker threads pull queries off a shared seeded stream (all seven
/// graph families via testing::DrawWorkloadGraph) and optimize each with
/// a randomly drawn algorithm (the four exact DPs plus the Adaptive
/// facade) under randomly drawn pressure: tight per-query deadlines,
/// small memo budgets, and randomized fault-injection schedules
/// (allocation, clock, trace-sink), all with anytime salvage armed.
/// The per-query RNG depends only on (seed, query index), never on the
/// thread that happens to run it, so any failure reproduces
/// single-threaded with the printed seed.
///
/// Oracles, checked for every query:
///
///   * no crash, ever — any escaped exception or signal fails CI;
///   * every successful result is either exact (cost equals a clean
///     DPccp baseline computed on the same thread) or a validator-clean
///     best-effort plan with a populated DegradationReport whose cost is
///     >= the baseline optimum;
///   * failures are confined to the typed degradation codes
///     (kBudgetExceeded / kInternal);
///   * no cross-query state leakage: every worker re-runs a fixed
///     sentinel query at intervals and must reproduce the exact cost the
///     main thread computed before the workers started (the fault
///     injector, governor, and memo are all per-run/per-thread state —
///     any bleed shows up here);
///   * liveness: a watchdog thread aborts the process with diagnostics
///     when no worker makes progress for JOINOPT_WATCHDOG_S seconds
///     (default 30, automatically quadrupled under ASan/TSan builds).
///
/// With --service the soak instead drives the serving layer
/// (serve::OptimizerService) through its chaos battery: a pool of
/// recurring queries (so the plan cache actually gets hits) is streamed
/// through the service while the harness injects per-request fault
/// schedules, bumps the catalog generation mid-stream, and fires
/// overload bursts several times the queue depth. Service-mode oracles:
///
///   * cache poisoning: EVERY cache hit is re-checked against a fresh
///     clean DP on the same canonical graph — the hit's cost and full
///     OutcomeSignature must match bit-for-bit (the hit==miss contract);
///   * typed degradation only: responses are kOk or one of
///     kBudgetExceeded / kInternal / kOverloaded; sheds carry
///     kOverloaded and the shed flag, never a hang or a silent drop;
///   * overload bursts shed rather than stall: each burst must complete
///     (every future resolves) with at least one typed shed — half the
///     burst carries an unmeetable 1ns deadline so that bar holds even
///     on hardware fast enough to drain the burst outright;
///   * generation bumps never let a pre-bump plan surface afterwards
///     (subsumed by the poisoning oracle, since the oracle re-runs
///     against current statistics);
///   * submissions after Shutdown are shed with kOverloaded;
///   * liveness: the same watchdog, over harvested responses.
///
/// With --crash-recovery (POSIX only) the soak becomes a process-kill
/// chaos harness for snapshot persistence (serve/snapshot.h). A
/// single-threaded supervisor forks a service worker that loads the
/// snapshot at --snapshot (a temp file by default), replays the
/// recurring pool against it, snapshots on a tight period, and then
/// streams chaos traffic until the supervisor SIGKILLs it after a
/// randomized 5-250 ms delay — deliberately landing kills mid-traffic
/// and, with a ~20 ms snapshot period, frequently mid-snapshot-write.
/// --cycles N kill/restart cycles (default 3) are followed by one final
/// clean cycle that must exit 0. Crash-recovery oracles:
///
///   * warm restart: every cycle after the first must load the snapshot
///     (typed kLoaded, all pool entries restored) and replay the ENTIRE
///     pool as cache hits, each re-checked by the poisoning oracle — a
///     recovered hit must match a fresh DP bit-for-bit;
///   * torn-rename: between cycles the supervisor loads the surviving
///     file in-process; a kill mid-write must leave the PREVIOUS
///     complete snapshot, never a torn one;
///   * kill discipline: a worker that exits on its own before the kill
///     failed an oracle; the supervisor requires WIFSIGNALED(SIGKILL);
///   * corruption drill: after the last cycle one record byte is
///     flipped on disk and the load must skip exactly that record with
///     a typed count — never crash, never serve it.
///
/// With --wire (POSIX only) the soak attacks the network front end
/// (serve/server.h + serve/wire.h). Phase 1 forks a real wire server per
/// cycle and drives it over TCP: kill cycles SIGKILL it mid-stream
/// (client retry must come back with a typed kUnavailable; the snapshot
/// must survive untorn; the next cycle must warm-restart into all-hit
/// wire traffic, poisoning-oracle-checked), and the final cycle must
/// drain to exit 0 on SIGTERM. Phase 2 runs an in-process protocol
/// battery: loopback responses bit-identical to SubmitAndWait, hostile
/// frames (garbage/bitflip/unknown-type/hostile-length/response-typed)
/// each earning a typed error then a clean close, malformed payloads
/// answered without dropping the connection, one-byte-at-a-time slow
/// writers served, stalled writers deadline-closed, mid-frame
/// disconnects shrugged off, and connection-table overflow shedding
/// typed kOverloaded frames. The wire oracle everywhere: the server
/// never crashes, and every outcome is a typed response or a clean
/// close.
///
/// With --repro-dir, the soak doubles as a flight recorder. Each worker
/// flushes a PARTIAL bundle (inputs, no expectation) to
/// inflight-<worker>.joinopt BEFORE dispatching every query, so even the
/// watchdog's hard abort leaves a usable artifact naming the query that
/// was running; the file is rewritten per query and removed on clean
/// worker exit. An oracle failure additionally captures the query as
/// repro-<q>.joinopt with the expectation filled by one replay. Soak
/// bundles that armed a wall-clock deadline (deadline_s) are recorded
/// truthfully but replay only approximately — the fault-point and budget
/// interruptions replay bit-for-bit.
///
/// Exit code 0 when the whole stream completes clean; 1 on the first
/// violated oracle (with the query index + seed reproducer); 2 on usage
/// errors; 3 on a watchdog stall. Runs under ThreadSanitizer in
/// tools/ci.sh (JOINOPT_SANITIZE=thread).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <future>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "joinopt.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "testing/adversarial.h"
#include "testing/fault_injection.h"
#include "testing/repro.h"
#include "testing/workloads.h"
#include "util/net.h"

namespace joinopt {
namespace {

const char* const kAlgorithms[] = {"DPsize",    "DPsub",    "DPccp",
                                   "DPhyp",     "DPsizePar", "DPsubPar",
                                   "Adaptive",  "DPconv"};
constexpr int kAlgorithmCount = 8;

/// Relative tolerance for cost comparisons: the baseline and the checked
/// run price identical trees through identical arithmetic, so this only
/// absorbs the validator-style reassociation noise.
constexpr double kCostTolerance = 1e-6;

/// The sentinel query for leak detection: fixed family, size, and seed.
constexpr uint64_t kSentinelSeed = 4242;

struct SoakConfig {
  int threads = 8;
  uint64_t queries = 500;
  uint64_t seed = 20060912;
  bool verbose = false;
  /// Drive serve::OptimizerService instead of bare orderers.
  bool service = false;
  /// Fork/SIGKILL chaos harness for snapshot persistence (POSIX only).
  bool crash_recovery = false;
  /// Wire-protocol chaos harness (POSIX only; see RunWireMode).
  bool wire = false;
  /// SIGKILL cycles before the final clean cycle.
  uint64_t crash_cycles = 3;
  /// Snapshot file for --crash-recovery; empty = per-run temp file.
  std::string snapshot_path;
  /// Watchdog stall limit (env-resolved in main; see util/env.h).
  double watchdog_seconds = 30.0;
  /// Flight-recorder directory; empty = capture disabled.
  std::string repro_dir;
};

struct SharedState {
  std::atomic<uint64_t> next_query{0};
  /// Monotone progress counter the watchdog watches.
  std::atomic<uint64_t> completed{0};
  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::mutex failure_mutex;
  std::string failure_detail;

  void Fail(std::string detail) {
    const std::lock_guard<std::mutex> lock(failure_mutex);
    if (!failed.exchange(true)) {
      failure_detail = std::move(detail);
    }
  }
};

Result<QueryGraph> MakeSentinelQuery() {
  WorkloadConfig config;
  config.seed = kSentinelSeed;
  return MakeChainQuery(6, config);
}

/// One worker's view of the run: its RNG is re-seeded per query from the
/// query index, so the stream is thread-assignment independent.
class Worker {
 public:
  Worker(int id, const SoakConfig& config, SharedState& shared,
         double sentinel_cost)
      : id_(id),
        config_(config),
        shared_(shared),
        sentinel_cost_(sentinel_cost) {}

  void Run() {
    const Result<QueryGraph> sentinel = MakeSentinelQuery();
    if (!sentinel.ok()) {
      shared_.Fail("sentinel generator failed: " +
                   sentinel.status().ToString());
      return;
    }
    while (!shared_.failed.load(std::memory_order_relaxed)) {
      const uint64_t q =
          shared_.next_query.fetch_add(1, std::memory_order_relaxed);
      if (q >= config_.queries) {
        break;
      }
      RunQuery(q);
      shared_.completed.fetch_add(1, std::memory_order_relaxed);
      if (q % 50 == 17) {
        CheckSentinel(*sentinel, q);
      }
    }
    // Clean exit: this worker is not stuck in anything, so its in-flight
    // marker would only mislead whoever reads the artifacts.
    if (!config_.repro_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove(InflightPath(), ec);
    }
  }

 private:
  void RunQuery(uint64_t q) {
    Random rng(config_.seed * 1000003 + q);
    std::string family;
    Result<QueryGraph> drawn = testing::DrawWorkloadGraph(rng, &family);
    if (!drawn.ok()) {
      FailQuery(q, family, "generator failed: " + drawn.status().ToString());
      return;
    }
    const QueryGraph& graph = *drawn;
    const CoutCostModel cost_model;
    const JoinOrderer* orderer =
        OptimizerRegistry::Get(kAlgorithms[rng.Uniform(kAlgorithmCount)]);
    if (orderer == nullptr) {
      FailQuery(q, family, "algorithm missing from registry");
      return;
    }

    // Draw this query's pressure: deadlines and budgets tight enough to
    // trip mid-run on the larger graphs, plus at most one fault point.
    OptimizeOptions options;
    options.salvage_on_interrupt = true;
    if (rng.Bernoulli(0.5)) {
      options.memo_entry_budget = 4 + rng.Uniform(60);
    }
    if (rng.Bernoulli(0.3)) {
      options.deadline_seconds = rng.UniformDouble(1e-7, 2e-3);
    }
    // An explicit small thread count for the parallel orderers (serial
    // orderers ignore it): auto-detection would tie the recorded bundle
    // to this machine's core count, and nested auto-sized pools under
    // config_.threads soak workers would oversubscribe badly.
    options.threads = 1 + static_cast<int>(rng.Uniform(4));
    testing::FaultConfig fault;
    switch (rng.Uniform(4)) {
      case 0:
        fault.at(testing::FaultPoint::kArenaAlloc) = 1 + rng.Uniform(512);
        break;
      case 1:
        fault.at(testing::FaultPoint::kDeadline) = 1 + rng.Uniform(512);
        break;
      case 2:
        fault.at(testing::FaultPoint::kTraceSink) = 1 + rng.Uniform(64);
        break;
      default:
        break;  // One in four queries runs fault-free.
    }
    testing::ThrowingTraceSink sink;
    if (fault.at(testing::FaultPoint::kTraceSink) != 0) {
      options.trace = &sink;
    }

    // Flight recorder: flush this query's inputs as a PARTIAL bundle
    // BEFORE dispatching, so a hang (and the watchdog's _Exit) still
    // leaves a machine-readable record of what was running.
    testing::ReproBundle bundle = testing::MakeReproBundle(
        graph, orderer->name(), "cout", options, fault,
        options.trace != nullptr, config_.seed,
        "joinopt_soak query " + std::to_string(q) + ", family " + family +
            ", worker " + std::to_string(id_));
    if (!config_.repro_dir.empty()) {
      std::ofstream out(InflightPath(), std::ios::trunc);
      if (out) {
        out << testing::WriteReproBundle(bundle);
        out.flush();
      }
    }

    Result<OptimizationResult> result = Status::Internal("never ran");
    {
      // The injector is thread_local, so this schedule is invisible to
      // every other worker. Construct the context inside the scope: the
      // governor caches the armed flag at construction.
      testing::ScopedFaultInjection scoped(fault);
      OptimizerContext ctx(graph, cost_model, options);
      result = orderer->Optimize(ctx);
    }

    // Clean exact baseline on this thread (fault scope already restored).
    const JoinOrderer* baseline_orderer = OptimizerRegistry::Get("DPccp");
    Result<OptimizationResult> baseline =
        baseline_orderer->Optimize(graph, cost_model);
    if (!baseline.ok()) {
      FailQuery(q, family,
                "clean DPccp baseline failed: " + baseline.status().ToString(),
                &bundle);
      return;
    }

    if (!result.ok()) {
      const StatusCode code = result.status().code();
      if (code != StatusCode::kBudgetExceeded &&
          code != StatusCode::kInternal) {
        FailQuery(q, family,
                  std::string(orderer->name()) +
                      " failed outside the degradation codes: " +
                      result.status().ToString(),
                  &bundle);
      }
      return;
    }

    const Status valid = ValidatePlan(result->plan, graph, cost_model);
    if (!valid.ok()) {
      FailQuery(q, family,
                std::string(orderer->name()) +
                    " plan failed validation: " + valid.ToString(),
                &bundle);
      return;
    }
    const double floor = baseline->cost * (1.0 - kCostTolerance);
    if (result->cost < floor) {
      FailQuery(q, family,
                std::string(orderer->name()) + " cost " +
                    std::to_string(result->cost) +
                    " beat the exact optimum " +
                    std::to_string(baseline->cost),
                &bundle);
      return;
    }
    if (result->stats.best_effort) {
      if (!result->degradation.best_effort ||
          result->degradation.trigger == StatusCode::kOk) {
        FailQuery(q, family,
                  "best-effort result with an empty DegradationReport",
                  &bundle);
        return;
      }
    } else if (result->stats.fallback_from.empty() &&
               std::string(orderer->name()) != "GOO" &&
               result->stats.algorithm != "IDP1" &&
               result->stats.algorithm != "GOO") {
      // Exact completion by an exact DP: must match the baseline optimum.
      const double ceiling = baseline->cost * (1.0 + kCostTolerance);
      if (result->cost > ceiling) {
        FailQuery(q, family,
                  result->stats.algorithm + " completed exactly with cost " +
                      std::to_string(result->cost) + " but the optimum is " +
                      std::to_string(baseline->cost),
                  &bundle);
        return;
      }
    }
  }

  /// Re-runs the fixed sentinel with clean options; any deviation from
  /// the pre-computed cost means one query's state leaked into another.
  void CheckSentinel(const QueryGraph& sentinel, uint64_t after_query) {
    const CoutCostModel cost_model;
    const JoinOrderer* orderer = OptimizerRegistry::Get("DPccp");
    Result<OptimizationResult> result =
        orderer->Optimize(sentinel, cost_model);
    if (!result.ok()) {
      shared_.Fail("sentinel query failed after query " +
                   std::to_string(after_query) + ": " +
                   result.status().ToString());
      return;
    }
    if (result->cost != sentinel_cost_ || result->stats.best_effort) {
      char buffer[192];
      std::snprintf(buffer, sizeof(buffer),
                    "cross-query state leak: sentinel cost %.17g != %.17g "
                    "after query %" PRIu64,
                    result->cost, sentinel_cost_, after_query);
      shared_.Fail(buffer);
    }
  }

  void FailQuery(uint64_t q, const std::string& family, std::string detail,
                 const testing::ReproBundle* bundle = nullptr) {
    shared_.Fail("query " + std::to_string(q) + " (family " + family +
                 ", reproduce: joinopt_soak --threads 1 --seed " +
                 std::to_string(config_.seed) + " --queries " +
                 std::to_string(q + 1) + "): " + std::move(detail));
    if (bundle != nullptr && !config_.repro_dir.empty()) {
      CaptureRepro(*bundle, q);
    }
  }

  std::string InflightPath() const {
    return config_.repro_dir + "/inflight-" + std::to_string(id_) +
           ".joinopt";
  }

  /// Persists a failed query as repro-<q>.joinopt. One replay (on this
  /// thread; the injector is thread_local) fills the expectation so the
  /// artifact replays clean when the interruption was deterministic.
  void CaptureRepro(testing::ReproBundle bundle, uint64_t q) const {
    const Result<OutcomeSignature> observed = testing::ReplayBundle(bundle);
    if (observed.ok()) {
      bundle.expected = *observed;
      bundle.has_expected = true;
    }
    const std::string path =
        config_.repro_dir + "/repro-" + std::to_string(q) + ".joinopt";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "joinopt_soak: cannot write %s\n", path.c_str());
      return;
    }
    out << testing::WriteReproBundle(bundle);
    std::fprintf(stderr, "joinopt_soak: captured %s\n", path.c_str());
  }

  const int id_;
  const SoakConfig& config_;
  SharedState& shared_;
  double sentinel_cost_;
};

/// Aborts the process when the workers stop making progress: a deadlock
/// or livelock under TSan/faults must fail loudly, not hang CI. The
/// stall limit comes from JOINOPT_WATCHDOG_S (auto-scaled for sanitizer
/// builds; see util/env.h), resolved once in main.
void Watchdog(SharedState& shared, double stall_seconds,
              const std::string& repro_dir) {
  const auto stall_limit =
      std::chrono::duration<double>(stall_seconds);
  uint64_t last_completed = shared.completed.load();
  auto last_change = std::chrono::steady_clock::now();
  while (!shared.done.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const uint64_t now_completed = shared.completed.load();
    const auto now = std::chrono::steady_clock::now();
    if (now_completed != last_completed) {
      last_completed = now_completed;
      last_change = now;
    } else if (now - last_change > stall_limit) {
      std::fprintf(stderr,
                   "joinopt_soak: WATCHDOG: no progress for %.0fs at %" PRIu64
                   " completed queries; aborting\n",
                   stall_seconds, now_completed);
      if (!repro_dir.empty()) {
        std::fprintf(stderr,
                     "joinopt_soak: the stuck queries' inputs are the "
                     "inflight-*.joinopt bundles in %s (each worker flushed "
                     "its bundle before dispatching)\n",
                     repro_dir.c_str());
      }
      std::_Exit(3);
    }
  }
}

/// ---------------------------------------------------------------------
/// Service chaos mode (--service).
/// ---------------------------------------------------------------------

/// One recurring query of the service-mode pool. The pool is small
/// relative to the stream length so the same fingerprint recurs and the
/// plan cache sees real hit traffic.
struct PoolQuery {
  QueryGraph graph;
  std::string family;
  std::string orderer;
};

/// One in-flight service request the harvester still owes a verdict.
struct InFlight {
  std::future<serve::ServeResponse> future;
  uint64_t q = 0;
  int pool_index = 0;
  bool faulted = false;
};

/// The request graph with every statistic replaced by its fingerprint
/// bucket representative, in the ORIGINAL numbering. This is the world
/// the service actually prices plans in (see serve/fingerprint.h), so it
/// is the graph a returned plan must validate against.
Result<QueryGraph> QuantizedCopy(const QueryGraph& graph) {
  QueryGraph quantized;
  for (int i = 0; i < graph.relation_count(); ++i) {
    Result<int> added = quantized.AddRelation(
        serve::DequantizeStat(serve::QuantizeStat(graph.cardinality(i))));
    if (!added.ok()) {
      return added.status();
    }
  }
  for (const JoinEdge& edge : graph.edges()) {
    const Status added = quantized.AddEdge(
        edge.left, edge.right,
        serve::DequantizeStat(serve::QuantizeStat(edge.selectivity)));
    if (!added.ok()) {
      return added;
    }
  }
  return quantized;
}

/// The poisoning oracle: a fresh, clean, unlimited run of the hit's
/// orderer on the SAME canonical graph the service optimizes. The cached
/// signature must match this bit-for-bit — anything else means the cache
/// served a plan a fresh optimization would not have produced.
bool CheckHitAgainstFreshRun(const PoolQuery& pool_query,
                             const serve::ServeResponse& response,
                             uint64_t q, SharedState& shared) {
  auto canonical = serve::CanonicalizeQuery(pool_query.graph,
                                            pool_query.orderer, "cout");
  if (!canonical.ok()) {
    shared.Fail("service query " + std::to_string(q) +
                ": oracle canonicalization failed: " +
                canonical.status().ToString());
    return false;
  }
  const CoutCostModel cost_model;
  const JoinOrderer* orderer = OptimizerRegistry::Get(pool_query.orderer);
  OptimizerContext ctx(canonical->graph, cost_model);
  const Result<OptimizationResult> fresh = orderer->Optimize(ctx);
  const OutcomeSignature fresh_signature =
      ExtractOutcomeSignature(fresh, ctx.stats());
  if (response.signature != fresh_signature) {
    shared.Fail("CACHE POISONING at service query " + std::to_string(q) +
                " (family " + pool_query.family + ", orderer " +
                pool_query.orderer +
                "): cached hit diverges from a fresh DP re-run:\n" +
                response.signature.DiffAgainst(fresh_signature));
    return false;
  }
  return true;
}

/// Validates one harvested response against the service-mode oracles.
void CheckServiceResponse(const PoolQuery& pool_query, const InFlight& flight,
                          serve::ServeResponse response,
                          SharedState& shared) {
  const StatusCode code = response.status.code();
  if (response.shed) {
    if (code != StatusCode::kOverloaded) {
      shared.Fail("service query " + std::to_string(flight.q) +
                  ": shed without kOverloaded: " +
                  response.status.ToString());
    }
    return;
  }
  if (!response.status.ok()) {
    if (code != StatusCode::kBudgetExceeded &&
        code != StatusCode::kInternal && code != StatusCode::kOverloaded) {
      shared.Fail("service query " + std::to_string(flight.q) +
                  " failed outside the degradation codes: " +
                  response.status.ToString());
    }
    return;
  }
  if (!response.plan.has_value()) {
    shared.Fail("service query " + std::to_string(flight.q) +
                ": kOk response without a plan");
    return;
  }
  // The response plan is in the REQUEST numbering but was priced in the
  // quantized-statistics world: validate it against the quantized copy of
  // the request graph (same numbering, bucket-representative stats).
  const Result<QueryGraph> quantized = QuantizedCopy(pool_query.graph);
  if (!quantized.ok()) {
    shared.Fail("service query " + std::to_string(flight.q) +
                ": quantized copy failed: " + quantized.status().ToString());
    return;
  }
  const CoutCostModel cost_model;
  const Status valid =
      ValidatePlan(*response.plan, *quantized, cost_model);
  if (!valid.ok()) {
    shared.Fail("service query " + std::to_string(flight.q) +
                ": plan failed validation: " + valid.ToString());
    return;
  }
  if (response.cache_hit &&
      !CheckHitAgainstFreshRun(pool_query, response, flight.q, shared)) {
    return;
  }
}

/// Builds the recurring service-mode pool: every family appears, sizes
/// small enough that the poisoning oracle's fresh re-runs stay cheap.
/// Deterministic in the seed, so a crash-recovery restart rebuilds the
/// exact fingerprints the previous process snapshotted.
constexpr int kPoolSize = 24;

Result<std::vector<PoolQuery>> BuildServicePool(uint64_t seed) {
  std::vector<PoolQuery> pool;
  pool.reserve(kPoolSize);
  for (int i = 0; i < kPoolSize; ++i) {
    Random rng(seed * 7919 + static_cast<uint64_t>(i));
    PoolQuery entry;
    Result<QueryGraph> drawn = testing::DrawWorkloadGraph(rng, &entry.family);
    if (!drawn.ok()) {
      return drawn.status();
    }
    entry.graph = std::move(*drawn);
    entry.orderer = kAlgorithms[rng.Uniform(kAlgorithmCount)];
    pool.push_back(std::move(entry));
  }
  return pool;
}

int RunServiceMode(const SoakConfig& config) {
  Result<std::vector<PoolQuery>> pool_result = BuildServicePool(config.seed);
  if (!pool_result.ok()) {
    std::fprintf(stderr, "joinopt_soak: pool generator failed: %s\n",
                 pool_result.status().ToString().c_str());
    return 1;
  }
  std::vector<PoolQuery>& pool = *pool_result;

  serve::ServiceConfig service_config;
  service_config.workers = std::max(1, config.threads / 2);
  service_config.queue_depth = 16;
  service_config.max_retries = 2;
  service_config.cache.capacity = 16;  // Small: force real evictions.
  service_config.cache.shards = 4;
  auto service = serve::OptimizerService::Create(service_config);
  if (!service.ok()) {
    std::fprintf(stderr, "joinopt_soak: service creation failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  SharedState shared;
  std::thread watchdog(Watchdog, std::ref(shared), config.watchdog_seconds,
                       std::cref(config.repro_dir));
  uint64_t bursts = 0;
  uint64_t burst_sheds = 0;
  uint64_t generation_bumps = 0;

  constexpr uint64_t kWindow = 32;
  for (uint64_t base = 0;
       base < config.queries && !shared.failed.load(); base += kWindow) {
    const uint64_t end = std::min(base + kWindow, config.queries);
    std::vector<InFlight> window;
    window.reserve(static_cast<size_t>(end - base));
    for (uint64_t q = base; q < end; ++q) {
      Random rng(config.seed * 1000003 + q);
      InFlight flight;
      flight.q = q;
      flight.pool_index = static_cast<int>(rng.Uniform(kPoolSize));
      const PoolQuery& pool_query =
          pool[static_cast<size_t>(flight.pool_index)];
      serve::ServeRequest request;
      request.graph = pool_query.graph;
      request.orderer = pool_query.orderer;
      if (rng.Bernoulli(0.15)) {
        // Transient chaos: a one-shot fault the retry envelope should
        // absorb (the schedule fires once, the retry runs clean).
        testing::FaultConfig fault;
        if (rng.Bernoulli(0.5)) {
          fault.at(testing::FaultPoint::kArenaAlloc) = 1 + rng.Uniform(64);
        } else {
          fault.at(testing::FaultPoint::kDeadline) = 1 + rng.Uniform(256);
        }
        request.faults = fault;
        flight.faulted = true;
      }
      if (rng.Bernoulli(0.1)) {
        request.memo_entry_budget = 8 + rng.Uniform(40);
      }
      request.threads = 1 + static_cast<int>(rng.Uniform(2));
      flight.future = (*service)->Submit(std::move(request));
      window.push_back(std::move(flight));
      if (q % 64 == 63) {
        // Catalog chaos: statistics "changed" mid-stream while requests
        // are queued and optimizing. Stale entries must die, in-flight
        // inserts stamped with the old generation must be refused.
        (*service)->BumpCatalogGeneration();
        ++generation_bumps;
      }
    }
    for (InFlight& flight : window) {
      serve::ServeResponse response = flight.future.get();
      CheckServiceResponse(pool[static_cast<size_t>(flight.pool_index)],
                           flight, std::move(response), shared);
      shared.completed.fetch_add(1, std::memory_order_relaxed);
    }

    // Overload burst every fourth window: slam several times the queue
    // depth at once. The service must resolve EVERY future (drain or
    // shed), and under this pressure at least one shed must be typed.
    if ((base / kWindow) % 4 == 3 && !shared.failed.load()) {
      ++bursts;
      std::vector<InFlight> burst;
      const int burst_size = service_config.queue_depth * 4;
      for (int b = 0; b < burst_size; ++b) {
        Random rng(config.seed * 777767 + base + static_cast<uint64_t>(b));
        InFlight flight;
        flight.q = base + static_cast<uint64_t>(b);
        flight.pool_index = static_cast<int>(rng.Uniform(kPoolSize));
        serve::ServeRequest request;
        request.graph = pool[static_cast<size_t>(flight.pool_index)].graph;
        request.orderer =
            pool[static_cast<size_t>(flight.pool_index)].orderer;
        // Alternate an unmeetable deadline with deadline-free requests.
        // The 1ns deadline sheds deterministically on any hardware — the
        // predictor refuses it at admission once the EMA is warm, and one
        // that slips into the queue expires on dequeue — while the
        // deadline-free half must drain (or hit queue-full) under the
        // same pressure. A fixed 100us deadline here silently stopped
        // shedding on machines fast enough to drain the burst.
        request.deadline_seconds = (b % 2 == 0) ? 1e-9 : 0.0;
        flight.future = (*service)->Submit(std::move(request));
        burst.push_back(std::move(flight));
      }
      for (InFlight& flight : burst) {
        serve::ServeResponse response = flight.future.get();
        if (response.shed) {
          ++burst_sheds;
          if (response.status.code() != StatusCode::kOverloaded) {
            shared.Fail("burst shed without kOverloaded: " +
                        response.status.ToString());
          }
        }
        shared.completed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Graceful drain, then the post-shutdown contract: a late Submit is
  // answered immediately with a typed shed, never queued into the void.
  (*service)->Shutdown(/*drain=*/true);
  {
    serve::ServeRequest late;
    late.graph = pool[0].graph;
    late.orderer = pool[0].orderer;
    serve::ServeResponse response = (*service)->SubmitAndWait(std::move(late));
    if (!response.shed ||
        response.status.code() != StatusCode::kOverloaded) {
      shared.Fail("post-shutdown submit was not shed with kOverloaded: " +
                  response.status.ToString());
    }
  }

  shared.done.store(true);
  watchdog.join();

  const serve::PlanCache::Stats cache = (*service)->CacheSnapshot();
  const serve::ServiceStats stats = (*service)->Snapshot();
  if (shared.failed.load()) {
    std::fprintf(stderr, "joinopt_soak: FAIL %s\n",
                 shared.failure_detail.c_str());
    return 1;
  }
  if (cache.hits == 0 && config.queries >= 2 * kPoolSize) {
    // A pool this small under a stream this long MUST hit; zero hits
    // means the fingerprint or the cache broke silently.
    std::fprintf(stderr,
                 "joinopt_soak: FAIL service mode saw zero cache hits over %"
                 PRIu64 " queries (pool %d)\n",
                 config.queries, kPoolSize);
    return 1;
  }
  if (bursts > 0 && burst_sheds == 0) {
    std::fprintf(stderr,
                 "joinopt_soak: FAIL %" PRIu64 " overload bursts produced "
                 "zero typed sheds — admission control is not shedding\n",
                 bursts);
    return 1;
  }
  std::printf(
      "joinopt_soak: service mode clean: %" PRIu64 " queries, %" PRIu64
      " hits / %" PRIu64 " misses / %" PRIu64 " stale, %" PRIu64
      " evictions, %" PRIu64 " generation bumps, %" PRIu64
      " bursts with %" PRIu64 " sheds (total shed %" PRIu64 "), seed %"
      PRIu64 "\n",
      config.queries, cache.hits, cache.misses, cache.stale,
      cache.evicted_probation + cache.evicted_protected, generation_bumps,
      bursts, burst_sheds,
      stats.shed_queue_full + stats.shed_predicted_deadline +
          stats.shed_queue_expired + stats.shed_shutdown,
      config.seed);
  return 0;
}

/// ---------------------------------------------------------------------
/// Crash-recovery chaos mode (--crash-recovery).
/// ---------------------------------------------------------------------

#ifndef _WIN32

/// Snapshot cadence inside the worker: tight enough that a randomized
/// 5-250 ms kill frequently lands mid-snapshot-write, exercising the
/// temp-file + atomic-rename protocol, not just happy-path persistence.
constexpr double kCrashSnapshotPeriodSeconds = 0.02;

/// The forked service worker for one crash-recovery cycle. Loads the
/// snapshot, replays the pool against it (poisoning-oracle-checked),
/// writes a fresh snapshot, drops the readiness marker for the
/// supervisor, then streams chaos traffic until SIGKILLed (or, on the
/// final cycle, exits cleanly after a bounded stream). Any oracle
/// failure exits 1 — the supervisor treats a self-exiting kill-cycle
/// worker as a failure.
int RunCrashWorker(const SoakConfig& config, const std::string& snapshot_path,
                   const std::string& marker_path, uint64_t cycle,
                   bool final_cycle) {
  Result<std::vector<PoolQuery>> pool_result = BuildServicePool(config.seed);
  if (!pool_result.ok()) {
    std::fprintf(stderr, "joinopt_soak: pool generator failed: %s\n",
                 pool_result.status().ToString().c_str());
    return 1;
  }
  std::vector<PoolQuery>& pool = *pool_result;

  serve::ServiceConfig service_config;
  service_config.workers = 2;
  service_config.queue_depth = 64;
  service_config.max_retries = 2;
  service_config.cache.capacity = 256;  // Holds the whole pool: no
                                        // eviction noise in the
                                        // hit-rate-retained oracle.
  service_config.cache.shards = 2;
  service_config.snapshot_path = snapshot_path;
  service_config.snapshot_period_seconds = kCrashSnapshotPeriodSeconds;
  auto service = serve::OptimizerService::Create(service_config);
  if (!service.ok()) {
    std::fprintf(stderr, "joinopt_soak: service creation failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  const serve::SnapshotLoadStats load = (*service)->LoadStats();
  if (cycle == 0) {
    if (load.outcome != serve::SnapshotLoad::kNoSnapshot) {
      std::fprintf(stderr,
                   "joinopt_soak: cycle 0 expected a cold start, got %s\n",
                   load.ToString().c_str());
      return 1;
    }
  } else if (load.outcome != serve::SnapshotLoad::kLoaded ||
             load.restored < pool.size()) {
    std::fprintf(stderr,
                 "joinopt_soak: cycle %" PRIu64
                 " recovery lost entries (want >= %zu restored): %s\n",
                 cycle, pool.size(), load.ToString().c_str());
    return 1;
  }

  // Warm phase: the whole pool, one clean request each. After a restart
  // EVERY one must be a cache hit (hit-rate retained), and every hit is
  // re-checked against a fresh DP by the poisoning oracle.
  SharedState shared;
  uint64_t hits = 0;
  for (int i = 0; i < static_cast<int>(pool.size()); ++i) {
    serve::ServeRequest request;
    request.graph = pool[static_cast<size_t>(i)].graph;
    request.orderer = pool[static_cast<size_t>(i)].orderer;
    serve::ServeResponse response =
        (*service)->SubmitAndWait(std::move(request));
    if (response.cache_hit) {
      ++hits;
    }
    InFlight flight;
    flight.q = static_cast<uint64_t>(i);
    flight.pool_index = i;
    CheckServiceResponse(pool[static_cast<size_t>(i)], flight,
                         std::move(response), shared);
    if (shared.failed.load()) {
      std::fprintf(stderr, "joinopt_soak: cycle %" PRIu64 " FAIL %s\n",
                   cycle, shared.failure_detail.c_str());
      return 1;
    }
  }
  if (cycle > 0 && hits < pool.size()) {
    std::fprintf(stderr,
                 "joinopt_soak: cycle %" PRIu64 " retained only %" PRIu64
                 "/%zu warm hits after recovery\n",
                 cycle, hits, pool.size());
    return 1;
  }

  // Guarantee a complete snapshot with the full pool exists before the
  // supervisor is told it may kill us.
  auto saved = (*service)->SaveSnapshotNow();
  if (!saved.ok()) {
    std::fprintf(stderr, "joinopt_soak: cycle %" PRIu64 " save failed: %s\n",
                 cycle, saved.status().ToString().c_str());
    return 1;
  }
  {
    std::ofstream marker(marker_path, std::ios::trunc);
    marker << "ready\n";
  }

  // Chaos phase: stream pool traffic (some requests fault-injected) with
  // the periodic snapshot thread racing underneath. Kill cycles run
  // until the SIGKILL lands; the final cycle is bounded and must drain
  // and exit clean.
  const uint64_t limit =
      final_cycle ? 4 * pool.size() : std::numeric_limits<uint64_t>::max();
  constexpr uint64_t kChaosWindow = 8;
  for (uint64_t base = 0; base < limit && !shared.failed.load();
       base += kChaosWindow) {
    std::vector<InFlight> window;
    for (uint64_t q = base; q < std::min(base + kChaosWindow, limit); ++q) {
      Random rng(config.seed * 1000003 + cycle * 0x9e3779b9 + q);
      InFlight flight;
      flight.q = q;
      flight.pool_index = static_cast<int>(rng.Uniform(kPoolSize));
      serve::ServeRequest request;
      request.graph = pool[static_cast<size_t>(flight.pool_index)].graph;
      request.orderer = pool[static_cast<size_t>(flight.pool_index)].orderer;
      if (rng.Bernoulli(0.15)) {
        testing::FaultConfig fault;
        if (rng.Bernoulli(0.5)) {
          fault.at(testing::FaultPoint::kArenaAlloc) = 1 + rng.Uniform(64);
        } else {
          fault.at(testing::FaultPoint::kDeadline) = 1 + rng.Uniform(256);
        }
        request.faults = fault;
        flight.faulted = true;
      }
      flight.future = (*service)->Submit(std::move(request));
      window.push_back(std::move(flight));
    }
    for (InFlight& flight : window) {
      serve::ServeResponse response = flight.future.get();
      CheckServiceResponse(pool[static_cast<size_t>(flight.pool_index)],
                           flight, std::move(response), shared);
    }
  }
  if (shared.failed.load()) {
    std::fprintf(stderr, "joinopt_soak: cycle %" PRIu64 " FAIL %s\n", cycle,
                 shared.failure_detail.c_str());
    return 1;
  }
  (*service)->Shutdown(/*drain=*/true);
  return 0;
}

/// Loads the surviving snapshot in-process — the supervisor's
/// torn-rename oracle. A SIGKILL mid-write must leave either the fresh
/// snapshot or the previous complete one; a torn header or lost pool
/// entry here means the atomic-rename protocol broke.
bool SnapshotSurvivedKill(const std::string& snapshot_path, uint64_t cycle) {
  serve::PlanCache cache{serve::PlanCacheConfig{}};
  auto loaded = serve::LoadSnapshot(cache, snapshot_path);
  if (!loaded.ok()) {
    std::fprintf(stderr,
                 "joinopt_soak: cycle %" PRIu64
                 " post-kill load errored: %s\n",
                 cycle, loaded.status().ToString().c_str());
    return false;
  }
  if (loaded->outcome != serve::SnapshotLoad::kLoaded ||
      loaded->restored < static_cast<uint64_t>(kPoolSize) ||
      loaded->skipped_corrupt != 0) {
    std::fprintf(stderr,
                 "joinopt_soak: cycle %" PRIu64
                 " kill tore the snapshot: %s\n",
                 cycle, loaded->ToString().c_str());
    return false;
  }
  return true;
}

int RunCrashRecovery(const SoakConfig& config) {
  std::string snapshot_path = config.snapshot_path;
  if (snapshot_path.empty()) {
    snapshot_path = (std::filesystem::temp_directory_path() /
                     ("joinopt_crash_" + std::to_string(::getpid()) + ".snap"))
                        .string();
  }
  const std::string marker_path = snapshot_path + ".ready";
  std::error_code ec;
  std::filesystem::remove(snapshot_path, ec);
  std::filesystem::remove(snapshot_path + ".tmp", ec);
  std::filesystem::remove(marker_path, ec);

  // The supervisor stays single-threaded (no watchdog thread): fork()
  // from a multithreaded parent is where the dragons live. Liveness is
  // enforced with bounded polls instead.
  const auto deadline_for = [&] {
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(config.watchdog_seconds));
  };
  const uint64_t total_cycles = config.crash_cycles + 1;
  for (uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool final_cycle = cycle == total_cycles - 1;
    std::filesystem::remove(marker_path, ec);
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("joinopt_soak: fork");
      return 1;
    }
    if (pid == 0) {
      std::exit(RunCrashWorker(config, snapshot_path, marker_path, cycle,
                               final_cycle));
    }
    if (final_cycle) {
      // Clean cycle: no kill. The worker must recover, replay the pool
      // as hits, run a bounded chaos stream, drain, and exit 0.
      int status = 0;
      if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != 0) {
        std::fprintf(stderr,
                     "joinopt_soak: final clean cycle did not exit 0 "
                     "(status 0x%x)\n",
                     static_cast<unsigned>(status));
        return 1;
      }
      break;
    }
    // Wait for the worker's readiness marker (snapshot with the full
    // pool on disk), bounded by the watchdog budget.
    const auto marker_deadline = deadline_for();
    bool ready = false;
    while (std::chrono::steady_clock::now() < marker_deadline) {
      if (std::filesystem::exists(marker_path, ec)) {
        ready = true;
        break;
      }
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        std::fprintf(stderr,
                     "joinopt_soak: cycle %" PRIu64
                     " worker died before readiness (status 0x%x)\n",
                     cycle, static_cast<unsigned>(status));
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!ready) {
      std::fprintf(stderr,
                   "joinopt_soak: WATCHDOG: cycle %" PRIu64
                   " worker never became ready in %.0fs\n",
                   cycle, config.watchdog_seconds);
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return 3;
    }
    // The kill point is the chaos: anywhere from "barely into the chaos
    // stream" to "deep in it", regularly mid-snapshot-write given the
    // 20 ms snapshot period.
    Random rng(config.seed * 9176 + cycle);
    const uint64_t delay_ms = 5 + rng.Uniform(246);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    ::kill(pid, SIGKILL);
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      std::perror("joinopt_soak: waitpid");
      return 1;
    }
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      // A worker that exited on its own hit an oracle failure (the chaos
      // stream is unbounded on kill cycles).
      std::fprintf(stderr,
                   "joinopt_soak: cycle %" PRIu64
                   " worker exited before the kill (status 0x%x)\n",
                   cycle, static_cast<unsigned>(status));
      return 1;
    }
    if (!SnapshotSurvivedKill(snapshot_path, cycle)) {
      return 1;
    }
    std::printf("joinopt_soak: cycle %" PRIu64 " killed after %" PRIu64
                "ms; snapshot intact\n",
                cycle, delay_ms);
  }

  // Corruption drill: flip one byte in the first record's payload. The
  // loader must skip exactly that record with a typed count — no crash,
  // no poisoned entry, everything else restored.
  {
    std::fstream file(snapshot_path,
                      std::ios::in | std::ios::out | std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "joinopt_soak: cannot reopen %s for the drill\n",
                   snapshot_path.c_str());
      return 1;
    }
    file.seekg(50);
    char byte = 0;
    file.get(byte);
    file.seekp(50);
    file.put(static_cast<char>(byte ^ 0x40));
    file.flush();
  }
  serve::PlanCache cache{serve::PlanCacheConfig{}};
  auto drilled = serve::LoadSnapshot(cache, snapshot_path);
  if (!drilled.ok() || drilled->outcome != serve::SnapshotLoad::kLoaded ||
      drilled->skipped_corrupt < 1 || drilled->restored < 1) {
    std::fprintf(stderr, "joinopt_soak: corruption drill failed: %s\n",
                 drilled.ok() ? drilled->ToString().c_str()
                              : drilled.status().ToString().c_str());
    return 1;
  }

  std::filesystem::remove(snapshot_path, ec);
  std::filesystem::remove(snapshot_path + ".tmp", ec);
  std::filesystem::remove(marker_path, ec);
  std::printf("joinopt_soak: crash recovery clean: %" PRIu64
              " kill cycles + 1 clean cycle, pool %d, drill skipped %" PRIu64
              " corrupt record(s), seed %" PRIu64 "\n",
              config.crash_cycles, kPoolSize, drilled->skipped_corrupt,
              config.seed);
  return 0;
}

#else  // _WIN32

int RunCrashRecovery(const SoakConfig&) {
  std::fprintf(stderr,
               "joinopt_soak: --crash-recovery requires fork(); not "
               "supported on this platform\n");
  return 2;
}

#endif  // _WIN32

/// ---------------------------------------------------------------------
/// Wire chaos mode (--wire).
///
/// Two phases, in this order because fork() from a threaded process is
/// undefined enough that TSan refuses it: phase 1 runs ALL its forks
/// before phase 2 creates the first in-process thread.
///
/// Phase 1 — process-kill cycles: a forked child runs the full wire
/// server (OptimizerService + WireServer on an ephemeral port, snapshot
/// on a 20 ms period); the supervisor drives it over real TCP with a
/// WireClient. Kill cycles stream pool traffic, SIGKILL the server
/// mid-stream, and check: the orphaned client's next Call returns a
/// typed kUnavailable (never a hang or a crash), the snapshot on disk
/// is a complete previous generation (torn-rename oracle), and the NEXT
/// cycle's warm phase replays the whole pool as wire cache hits, each
/// re-verified against a fresh DP by the poisoning oracle. The final
/// cycle is killed with SIGTERM instead and must drain and exit 0.
///
/// Phase 2 — in-process protocol battery against a Start()ed server:
///   A. loopback bit-identity: every pool query over the wire must
///      match an in-process SubmitAndWait bit-for-bit (signature, cost,
///      cardinality, algorithm);
///   B. hostile frames (garbage, CRC bitflip, unknown type, hostile
///      length, response-typed frame) each earn a typed error frame then
///      a clean close; a malformed PAYLOAD in a valid frame earns a
///      typed response and the connection keeps working;
///   C. a one-byte-at-a-time slow writer inside the deadline succeeds;
///      a writer that stalls mid-frame is deadline-closed;
///   D. mid-frame disconnects and half-open peers never wedge the
///      server;
///   E. connection-table overflow sheds a typed kOverloaded frame at
///      accept, and a client calling into the full table comes back
///      with a typed kUnavailable after its retries — never a hang.
/// ---------------------------------------------------------------------

#ifndef _WIN32

/// The wire pool sticks to the serial exact DPs: phase 1's poisoning
/// oracle re-runs them in the SUPERVISOR between forks, and a parallel
/// orderer there would make the parent multithreaded at fork time.
Result<std::vector<PoolQuery>> BuildWirePool(uint64_t seed) {
  static const char* const kSerialDPs[] = {"DPsize", "DPsub", "DPccp",
                                           "DPhyp", "DPconv"};
  Result<std::vector<PoolQuery>> pool = BuildServicePool(seed);
  if (!pool.ok()) {
    return pool;
  }
  for (size_t i = 0; i < pool->size(); ++i) {
    Random rng(seed * 52711 + i);
    (*pool)[i].orderer = kSerialDPs[rng.Uniform(5)];
  }
  return pool;
}

serve::ServeRequest WireRequestFor(const PoolQuery& pool_query) {
  serve::ServeRequest request;
  request.graph = pool_query.graph;
  request.orderer = pool_query.orderer;
  request.cost_model = "cout";
  request.threads = 1;
  return request;
}

serve::WireServer* volatile g_wire_child_server = nullptr;

extern "C" void WireChildDrainSignal(int /*signum*/) {
  serve::WireServer* server = g_wire_child_server;
  if (server != nullptr) {
    server->RequestStop();
  }
}

/// The forked wire-server child: serves until SIGTERM (graceful drain,
/// exit 0) or SIGKILL (the parent's chaos). Writes its ephemeral port
/// to `port_path` via atomic rename so the parent never reads a torn
/// handoff file.
int RunWireServerChild(const std::string& snapshot_path,
                       const std::string& port_path, double io_timeout) {
  serve::ServiceConfig service_config;
  service_config.workers = 2;
  service_config.queue_depth = 64;
  service_config.max_retries = 2;
  service_config.cache.capacity = 256;  // Holds the whole pool.
  service_config.cache.shards = 2;
  service_config.snapshot_path = snapshot_path;
  service_config.snapshot_period_seconds = kCrashSnapshotPeriodSeconds;
  auto service = serve::OptimizerService::Create(service_config);
  if (!service.ok()) {
    std::fprintf(stderr, "joinopt_soak: wire child service failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  serve::WireServerConfig server_config;
  server_config.listen.port = 0;
  server_config.max_connections = 16;
  server_config.io_timeout_seconds = io_timeout;
  auto server = serve::WireServer::Create(server_config, service->get());
  if (!server.ok()) {
    std::fprintf(stderr, "joinopt_soak: wire child listen failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  g_wire_child_server = server->get();
  std::signal(SIGTERM, WireChildDrainSignal);
  {
    const std::string tmp = port_path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    out << (*server)->port() << "\n";
    out.close();
    std::error_code ec;
    std::filesystem::rename(tmp, port_path, ec);
    if (ec) {
      std::fprintf(stderr, "joinopt_soak: wire child port handoff failed\n");
      return 1;
    }
  }
  (*server)->Run();
  g_wire_child_server = nullptr;
  (*service)->Shutdown(/*drain=*/true);
  return 0;
}

/// Phase 1 (see the mode comment above). Single-threaded on purpose.
int WireForkPhase(const SoakConfig& config,
                  const std::vector<PoolQuery>& pool) {
  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() /
       ("joinopt_wire_" + std::to_string(::getpid()) + ".snap"))
          .string();
  const std::string port_path = snapshot_path + ".port";
  std::error_code ec;
  std::filesystem::remove(snapshot_path, ec);
  std::filesystem::remove(snapshot_path + ".tmp", ec);
  std::filesystem::remove(port_path, ec);
  // Generous per-exchange bound: sanitizer builds optimize slowly, and a
  // false client timeout would read as a server failure.
  const double io_timeout = std::max(3.0, config.watchdog_seconds / 10.0);

  const uint64_t total_cycles = config.crash_cycles + 1;
  for (uint64_t cycle = 0; cycle < total_cycles; ++cycle) {
    const bool final_cycle = cycle == total_cycles - 1;
    std::filesystem::remove(port_path, ec);
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("joinopt_soak: fork");
      return 1;
    }
    if (pid == 0) {
      std::exit(RunWireServerChild(snapshot_path, port_path, io_timeout));
    }

    // Port handoff, bounded by the watchdog budget.
    uint16_t port = 0;
    const auto handoff_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config.watchdog_seconds));
    while (std::chrono::steady_clock::now() < handoff_deadline) {
      std::ifstream in(port_path);
      unsigned value = 0;
      if (in && (in >> value) && value > 0 && value <= 65535) {
        port = static_cast<uint16_t>(value);
        break;
      }
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        std::fprintf(stderr,
                     "joinopt_soak: wire cycle %" PRIu64
                     " server died before handoff (status 0x%x)\n",
                     cycle, static_cast<unsigned>(status));
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (port == 0) {
      std::fprintf(stderr,
                   "joinopt_soak: WATCHDOG: wire cycle %" PRIu64
                   " server never published its port\n",
                   cycle);
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return 3;
    }

    serve::WireClientConfig client_config;
    client_config.server = net::Endpoint{"127.0.0.1", port};
    client_config.io_timeout_seconds = io_timeout;
    client_config.max_retries = 2;
    client_config.retry_backoff_seconds = 0.02;
    client_config.seed = config.seed + cycle;
    serve::WireClient client(client_config);
    SharedState shared;

    // Warm phase: the whole pool over the wire. After a restart every
    // one must be a cache hit recovered from the snapshot, and every
    // hit is re-verified against a fresh DP.
    uint64_t hits = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
      serve::ServeResponse response = client.Call(WireRequestFor(pool[i]));
      if (response.status.code() == StatusCode::kUnavailable) {
        std::fprintf(stderr,
                     "joinopt_soak: wire cycle %" PRIu64
                     " warm query %zu unreachable: %s\n",
                     cycle, i, response.status.ToString().c_str());
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return 1;
      }
      if (response.cache_hit) {
        ++hits;
      }
      InFlight flight;
      flight.q = static_cast<uint64_t>(i);
      flight.pool_index = static_cast<int>(i);
      CheckServiceResponse(pool[i], flight, std::move(response), shared);
      if (shared.failed.load()) {
        std::fprintf(stderr, "joinopt_soak: wire cycle %" PRIu64 " FAIL %s\n",
                     cycle, shared.failure_detail.c_str());
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return 1;
      }
    }
    if (cycle > 0 && hits < pool.size()) {
      std::fprintf(stderr,
                   "joinopt_soak: wire cycle %" PRIu64 " retained only %"
                   PRIu64 "/%zu warm hits after recovery\n",
                   cycle, hits, pool.size());
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return 1;
    }
    // Let the child's periodic snapshot thread persist the now-complete
    // pool before any kill can land.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    if (final_cycle) {
      // Graceful drain: SIGTERM must finish in-flight work and exit 0.
      client.Disconnect();
      ::kill(pid, SIGTERM);
      int status = 0;
      if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != 0) {
        std::fprintf(stderr,
                     "joinopt_soak: wire final cycle did not drain to exit 0 "
                     "(status 0x%x)\n",
                     static_cast<unsigned>(status));
        return 1;
      }
      break;
    }

    // Chaos stream, then the kill.
    Random rng(config.seed * 18119 + cycle);
    const uint64_t kill_after = 4 + rng.Uniform(24);
    for (uint64_t q = 0; q < kill_after; ++q) {
      const int pool_index = static_cast<int>(rng.Uniform(kPoolSize));
      serve::ServeResponse response =
          client.Call(WireRequestFor(pool[static_cast<size_t>(pool_index)]));
      if (response.status.code() == StatusCode::kUnavailable) {
        std::fprintf(stderr,
                     "joinopt_soak: wire cycle %" PRIu64
                     " server vanished mid-stream: %s\n",
                     cycle, response.status.ToString().c_str());
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return 1;
      }
      InFlight flight;
      flight.q = q;
      flight.pool_index = pool_index;
      CheckServiceResponse(pool[static_cast<size_t>(pool_index)], flight,
                           std::move(response), shared);
      if (shared.failed.load()) {
        std::fprintf(stderr, "joinopt_soak: wire cycle %" PRIu64 " FAIL %s\n",
                     cycle, shared.failure_detail.c_str());
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return 1;
      }
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      std::perror("joinopt_soak: waitpid");
      return 1;
    }
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      std::fprintf(stderr,
                   "joinopt_soak: wire cycle %" PRIu64
                   " server exited before the kill (status 0x%x)\n",
                   cycle, static_cast<unsigned>(status));
      return 1;
    }
    // The orphaned client: its connection is now half-open (the peer is
    // gone without a drain). The retry envelope must come back with a
    // typed kUnavailable — never a hang, never an untyped failure.
    serve::ServeResponse gone = client.Call(WireRequestFor(pool[0]));
    if (gone.status.code() != StatusCode::kUnavailable) {
      std::fprintf(stderr,
                   "joinopt_soak: wire cycle %" PRIu64
                   " post-kill call was not a typed kUnavailable: %s\n",
                   cycle, gone.status.ToString().c_str());
      return 1;
    }
    client.Disconnect();
    if (!SnapshotSurvivedKill(snapshot_path, cycle)) {
      return 1;
    }
    std::printf("joinopt_soak: wire cycle %" PRIu64 " killed after %" PRIu64
                " queries; snapshot intact, client typed-unavailable\n",
                cycle, kill_after);
  }

  std::filesystem::remove(snapshot_path, ec);
  std::filesystem::remove(snapshot_path + ".tmp", ec);
  std::filesystem::remove(port_path, ec);
  return 0;
}

/// Appends whatever the server sends until EOF or `patience` elapses.
/// Returns true only on a clean close (EOF or reset).
bool ReadUntilClose(int fd, std::string& buf, double patience) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(patience));
  char tmp[4096];
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return false;
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count()) + 1;
    const int revents = net::PollRetry(fd, POLLIN, wait_ms);
    if (revents < 0) {
      return true;  // A dead descriptor is as closed as it gets.
    }
    if (revents == 0) {
      return false;
    }
    const int64_t n = net::ReadRetry(fd, tmp, sizeof(tmp));
    if (n == 0) {
      return true;
    }
    if (n < 0) {
      const int err = static_cast<int>(-n);
      if (err == EAGAIN || err == EWOULDBLOCK) {
        continue;
      }
      return true;  // ECONNRESET and friends: the peer closed on us.
    }
    buf.append(tmp, static_cast<size_t>(n));
  }
}

/// Reads exactly one complete frame. False on corruption, close, or
/// timeout.
bool ReadOneFrame(int fd, std::string& buf, double patience,
                  serve::WireFrame& out) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(patience));
  char tmp[4096];
  for (;;) {
    const serve::FrameDecodeResult decoded = serve::DecodeFrame(buf);
    if (decoded.outcome == serve::FrameDecode::kFrame) {
      out = decoded.frame;
      buf.erase(0, decoded.consumed);
      return true;
    }
    if (decoded.outcome == serve::FrameDecode::kCorrupt) {
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return false;
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count()) + 1;
    const int revents = net::PollRetry(fd, POLLIN, wait_ms);
    if (revents <= 0) {
      return false;
    }
    const int64_t n = net::ReadRetry(fd, tmp, sizeof(tmp));
    if (n == 0) {
      return false;
    }
    if (n < 0) {
      const int err = static_cast<int>(-n);
      if (err == EAGAIN || err == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    buf.append(tmp, static_cast<size_t>(n));
  }
}

/// Phase 2 (see the mode comment above).
int WireInProcessPhase(const SoakConfig& config,
                       const std::vector<PoolQuery>& pool) {
  serve::ServiceConfig service_config;
  service_config.workers = 2;
  service_config.queue_depth = 16;
  service_config.max_retries = 2;
  service_config.cache.capacity = 256;
  service_config.cache.shards = 4;
  auto service = serve::OptimizerService::Create(service_config);
  if (!service.ok()) {
    std::fprintf(stderr, "joinopt_soak: wire service creation failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  serve::WireServerConfig server_config;
  server_config.listen.port = 0;
  server_config.max_connections = 4;  // Small: overflow is reachable.
  server_config.io_timeout_seconds = 1.0;
  auto server = serve::WireServer::Create(server_config, service->get());
  if (!server.ok()) {
    std::fprintf(stderr, "joinopt_soak: wire server creation failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  (*server)->Start();
  const net::Endpoint endpoint{"127.0.0.1", (*server)->port()};
  const double patience = std::max(6.0, config.watchdog_seconds / 5.0);

  SharedState shared;
  std::thread watchdog(Watchdog, std::ref(shared), config.watchdog_seconds,
                       std::cref(config.repro_dir));
  const auto tick = [&shared] {
    shared.completed.fetch_add(1, std::memory_order_relaxed);
  };
  const auto finish = [&](int code) {
    shared.done.store(true);
    watchdog.join();
    (*server)->Stop();
    (*service)->Shutdown(/*drain=*/true);
    if (code == 0 && shared.failed.load()) {
      std::fprintf(stderr, "joinopt_soak: wire FAIL %s\n",
                   shared.failure_detail.c_str());
      return 1;
    }
    return code;
  };

  serve::WireClientConfig client_config;
  client_config.server = endpoint;
  client_config.io_timeout_seconds = std::max(3.0, patience / 2.0);
  client_config.max_retries = 2;
  client_config.retry_backoff_seconds = 0.01;
  client_config.seed = config.seed;
  serve::WireClient client(client_config);

  // --- Round A: loopback bit-identity against SubmitAndWait. ---------
  for (size_t i = 0; i < pool.size(); ++i) {
    serve::ServeResponse wire = client.Call(WireRequestFor(pool[i]));
    serve::ServeResponse local =
        (*service)->SubmitAndWait(WireRequestFor(pool[i]));
    if (wire.status.code() != local.status.code()) {
      shared.Fail("wire query " + std::to_string(i) + ": wire status " +
                  wire.status.ToString() + " != in-process " +
                  local.status.ToString());
      return finish(0);
    }
    if (wire.status.ok()) {
      if (wire.signature != local.signature) {
        shared.Fail("wire query " + std::to_string(i) +
                    ": wire response diverges from in-process "
                    "SubmitAndWait:\n" +
                    wire.signature.DiffAgainst(local.signature));
        return finish(0);
      }
      if (wire.cost != local.cost || wire.cardinality != local.cardinality ||
          wire.algorithm != local.algorithm) {
        shared.Fail("wire query " + std::to_string(i) +
                    ": cost/cardinality/algorithm not bit-identical over "
                    "the wire");
        return finish(0);
      }
    }
    InFlight flight;
    flight.q = static_cast<uint64_t>(i);
    flight.pool_index = static_cast<int>(i);
    CheckServiceResponse(pool[i], flight, std::move(wire), shared);
    if (shared.failed.load()) {
      return finish(0);
    }
    tick();
  }
  client.Disconnect();  // Raw-socket rounds own the connection table.

  const std::string good_payload =
      serve::EncodeRequestPayload(WireRequestFor(pool[0]));
  const std::string good_frame =
      serve::EncodeFrame(serve::FrameType::kRequest, good_payload);
  const auto raw_connect = [&]() -> int {
    Result<int> fd = net::ConnectTcp(endpoint, patience);
    if (!fd.ok()) {
      shared.Fail("raw connect failed: " + fd.status().ToString());
      return -1;
    }
    return *fd;
  };
  // A liveness probe after every hostile act: the server must still
  // answer a clean query.
  const auto alive = [&](const char* after) {
    serve::ServeResponse probe = client.Call(WireRequestFor(pool[1]));
    if (!probe.status.ok()) {
      shared.Fail(std::string("server not serving after ") + after + ": " +
                  probe.status.ToString());
      return false;
    }
    client.Disconnect();
    return true;
  };

  // --- Round B: hostile frames. --------------------------------------
  struct Corruption {
    const char* name;
    std::string bytes;
  };
  std::vector<Corruption> corruptions;
  corruptions.push_back({"garbage", "this is not a joinopt frame at all\n"});
  {
    std::string flipped = good_frame;
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x20);
    corruptions.push_back({"crc bitflip", std::move(flipped)});
  }
  {
    std::string bad_type = good_frame;
    bad_type[5] = 9;
    corruptions.push_back({"unknown type", std::move(bad_type)});
  }
  {
    std::string hostile = good_frame;
    hostile[6] = static_cast<char>(0xff);
    hostile[7] = static_cast<char>(0xff);
    hostile[8] = static_cast<char>(0xff);
    hostile[9] = 0x7f;
    corruptions.push_back({"hostile length", std::move(hostile)});
  }
  corruptions.push_back(
      {"response-typed frame",
       serve::EncodeFrame(serve::FrameType::kResponse, good_payload)});
  for (const Corruption& corruption : corruptions) {
    const int fd = raw_connect();
    if (fd < 0) {
      return finish(0);
    }
    const Status sent = net::SendAll(fd, corruption.bytes.data(),
                                     corruption.bytes.size(), patience);
    if (!sent.ok()) {
      shared.Fail(std::string(corruption.name) +
                  ": send failed: " + sent.ToString());
      net::CloseQuiet(fd);
      return finish(0);
    }
    std::string buf;
    const bool closed = ReadUntilClose(fd, buf, patience);
    net::CloseQuiet(fd);
    if (!closed) {
      shared.Fail(std::string(corruption.name) +
                  ": server did not close the poisoned connection");
      return finish(0);
    }
    serve::FrameDecodeResult decoded = serve::DecodeFrame(buf);
    if (decoded.outcome != serve::FrameDecode::kFrame ||
        decoded.frame.type != serve::FrameType::kResponse) {
      shared.Fail(std::string(corruption.name) +
                  ": no typed error frame before the close");
      return finish(0);
    }
    Result<serve::ServeResponse> response =
        serve::DecodeResponsePayload(decoded.frame.payload);
    if (!response.ok() ||
        response->status.code() != StatusCode::kInvalidArgument) {
      shared.Fail(std::string(corruption.name) +
                  ": error frame was not a typed kInvalidArgument");
      return finish(0);
    }
    if (!alive(corruption.name)) {
      return finish(0);
    }
    tick();
  }

  // A malformed payload inside a VALID frame: typed response, and the
  // connection keeps serving.
  {
    const int fd = raw_connect();
    if (fd < 0) {
      return finish(0);
    }
    const std::string bad_payload = serve::EncodeFrame(
        serve::FrameType::kRequest, "joinopt-wire v1\nnonsense\n");
    Status sent =
        net::SendAll(fd, bad_payload.data(), bad_payload.size(), patience);
    std::string buf;
    serve::WireFrame frame;
    if (!sent.ok() || !ReadOneFrame(fd, buf, patience, frame)) {
      shared.Fail("bad payload: no typed response");
      net::CloseQuiet(fd);
      return finish(0);
    }
    Result<serve::ServeResponse> typed =
        serve::DecodeResponsePayload(frame.payload);
    if (!typed.ok() ||
        typed->status.code() != StatusCode::kInvalidArgument) {
      shared.Fail("bad payload: response was not a typed kInvalidArgument");
      net::CloseQuiet(fd);
      return finish(0);
    }
    sent = net::SendAll(fd, good_frame.data(), good_frame.size(), patience);
    if (!sent.ok() || !ReadOneFrame(fd, buf, patience, frame) ||
        !(typed = serve::DecodeResponsePayload(frame.payload)).ok() ||
        !typed->status.ok()) {
      shared.Fail("bad payload: connection did not survive the typed error");
      net::CloseQuiet(fd);
      return finish(0);
    }
    net::CloseQuiet(fd);
    tick();
  }

  // --- Round C: slow writer, then a stalled one. ---------------------
  {
    const int fd = raw_connect();
    if (fd < 0) {
      return finish(0);
    }
    Status sent = Status::OK();
    for (size_t i = 0; i < good_frame.size() && sent.ok(); ++i) {
      sent = net::SendAll(fd, good_frame.data() + i, 1, patience);
      if (i % 32 == 31) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    std::string buf;
    serve::WireFrame frame;
    Result<serve::ServeResponse> typed = Status::Internal("no frame");
    if (!sent.ok() || !ReadOneFrame(fd, buf, patience, frame) ||
        !(typed = serve::DecodeResponsePayload(frame.payload)).ok() ||
        !typed->status.ok()) {
      shared.Fail("slow writer inside the deadline did not get a response");
      net::CloseQuiet(fd);
      return finish(0);
    }
    net::CloseQuiet(fd);
    tick();
  }
  {
    const int fd = raw_connect();
    if (fd < 0) {
      return finish(0);
    }
    // Header only, then silence: the read deadline must cut us off.
    const Status sent = net::SendAll(fd, good_frame.data(), 10, patience);
    std::string buf;
    const bool closed =
        sent.ok() && ReadUntilClose(fd, buf, patience);
    net::CloseQuiet(fd);
    if (!closed) {
      shared.Fail("stalled mid-frame writer was not deadline-closed");
      return finish(0);
    }
    const serve::WireServer::Stats stats = (*server)->StatsSnapshot();
    if (stats.deadline_closes < 1) {
      shared.Fail("deadline close not counted in server stats");
      return finish(0);
    }
    if (!alive("a stalled writer")) {
      return finish(0);
    }
    tick();
  }

  // --- Round D: mid-frame disconnects. -------------------------------
  for (int k = 0; k < 10; ++k) {
    const int fd = raw_connect();
    if (fd < 0) {
      return finish(0);
    }
    const size_t cut = 1 + (static_cast<size_t>(k) * 7) %
                               (good_frame.size() - 1);
    (void)net::SendAll(fd, good_frame.data(), cut, patience);
    net::CloseQuiet(fd);  // Abrupt: the server sees EOF mid-frame.
  }
  if (!alive("10 mid-frame disconnects")) {
    return finish(0);
  }
  tick();

  // --- Round E: connection-table overflow. ---------------------------
  // A dedicated server instance makes the overflow deterministic: the
  // main server's 1s idle deadline races the fill (a stale connection
  // from an earlier round can be reaped between the fill and the probe,
  // reopening a slot), so this one gets a deadline comfortably longer
  // than the round and its accepts are awaited explicitly.
  uint64_t overflow_sheds_total = 0;
  {
    serve::WireServerConfig overflow_config;
    overflow_config.listen.port = 0;
    overflow_config.max_connections = 4;
    overflow_config.io_timeout_seconds = std::max(10.0, 2.0 * patience);
    auto overflow_server =
        serve::WireServer::Create(overflow_config, service->get());
    if (!overflow_server.ok()) {
      shared.Fail("overflow server creation failed: " +
                  overflow_server.status().ToString());
      return finish(0);
    }
    (*overflow_server)->Start();
    const net::Endpoint overflow_endpoint{"127.0.0.1",
                                          (*overflow_server)->port()};
    std::vector<int> idle;
    for (int i = 0; i < overflow_config.max_connections; ++i) {
      Result<int> fd = net::ConnectTcp(overflow_endpoint, patience);
      if (!fd.ok()) {
        shared.Fail("overflow setup connect failed: " +
                    fd.status().ToString());
        break;
      }
      idle.push_back(*fd);
    }
    // connect() returning only proves the SYN queue took us; wait until
    // the event loop has actually accepted all four into the table.
    Stopwatch accept_wait;
    while (!shared.failed.load() &&
           (*overflow_server)->StatsSnapshot().accepted <
               static_cast<uint64_t>(overflow_config.max_connections) &&
           accept_wait.ElapsedSeconds() < patience) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!shared.failed.load() &&
        (*overflow_server)->StatsSnapshot().accepted <
            static_cast<uint64_t>(overflow_config.max_connections)) {
      shared.Fail("overflow setup: table never filled");
    }
    if (shared.failed.load()) {
      for (const int fd : idle) {
        net::CloseQuiet(fd);
      }
      (*overflow_server)->Stop();
      return finish(0);
    }
    Result<int> extra = net::ConnectTcp(overflow_endpoint, patience);
    if (extra.ok()) {
      std::string buf;
      const bool closed = ReadUntilClose(*extra, buf, patience);
      net::CloseQuiet(*extra);
      serve::FrameDecodeResult decoded = serve::DecodeFrame(buf);
      Result<serve::ServeResponse> shed = Status::Internal("no frame");
      if (!closed || decoded.outcome != serve::FrameDecode::kFrame ||
          !(shed = serve::DecodeResponsePayload(decoded.frame.payload))
               .ok() ||
          !shed->shed ||
          shed->status.code() != StatusCode::kOverloaded) {
        shared.Fail("table overflow did not shed a typed kOverloaded "
                    "frame before closing");
      }
    } else {
      shared.Fail("overflow connect was refused outright: " +
                  extra.status().ToString());
    }
    // A client hammering the full table must come back typed, not hang.
    if (!shared.failed.load()) {
      serve::WireClientConfig jam_config = client_config;
      jam_config.server = overflow_endpoint;
      jam_config.io_timeout_seconds = 1.0;
      serve::WireClient jam_client(jam_config);
      serve::ServeResponse jammed = jam_client.Call(WireRequestFor(pool[0]));
      if (jammed.status.code() != StatusCode::kUnavailable &&
          jammed.status.code() != StatusCode::kOverloaded) {
        shared.Fail("call into a full table was not typed "
                    "kUnavailable/kOverloaded: " +
                    jammed.status.ToString());
      }
    }
    for (const int fd : idle) {
      net::CloseQuiet(fd);
    }
    const serve::WireServer::Stats overflow_stats =
        (*overflow_server)->StatsSnapshot();
    overflow_sheds_total = overflow_stats.overflow_sheds;
    (*overflow_server)->Stop();
    if (shared.failed.load()) {
      return finish(0);
    }
    if (overflow_stats.overflow_sheds < 1) {
      shared.Fail("overflow shed not counted in server stats");
      return finish(0);
    }
    if (!alive("the overflow round")) {
      return finish(0);
    }
    tick();
  }

  const serve::WireServer::Stats stats = (*server)->StatsSnapshot();
  const int code = finish(0);
  if (code == 0) {
    std::printf("joinopt_soak: wire in-process battery clean: %" PRIu64
                " accepted, %" PRIu64 " responses, %" PRIu64
                " protocol errors, %" PRIu64 " deadline closes, %" PRIu64
                " overflow sheds, %" PRIu64 " peer closes\n",
                stats.accepted, stats.responses, stats.protocol_errors,
                stats.deadline_closes,
                stats.overflow_sheds + overflow_sheds_total,
                stats.peer_closes);
  }
  return code;
}

int RunWireMode(const SoakConfig& config) {
  Result<std::vector<PoolQuery>> pool = BuildWirePool(config.seed);
  if (!pool.ok()) {
    std::fprintf(stderr, "joinopt_soak: wire pool generator failed: %s\n",
                 pool.status().ToString().c_str());
    return 1;
  }
  // Fork phase strictly first: no in-process thread may exist at fork
  // time (TSan enforces this; plain builds merely deadlock eventually).
  const int forked = WireForkPhase(config, *pool);
  if (forked != 0) {
    return forked;
  }
  const int in_process = WireInProcessPhase(config, *pool);
  if (in_process != 0) {
    return in_process;
  }
  std::printf("joinopt_soak: wire chaos clean: %" PRIu64
              " kill cycles + 1 drain cycle + in-process battery, pool %d, "
              "seed %" PRIu64 "\n",
              config.crash_cycles, kPoolSize, config.seed);
  return 0;
}

#else  // _WIN32

int RunWireMode(const SoakConfig&) {
  std::fprintf(stderr,
               "joinopt_soak: --wire requires fork() and POSIX sockets; not "
               "supported on this platform\n");
  return 2;
}

#endif  // _WIN32

int Run(const SoakConfig& config) {
  // Pre-compute the sentinel optimum (and force registry construction)
  // on the main thread before any worker exists.
  const Result<QueryGraph> sentinel = MakeSentinelQuery();
  if (!sentinel.ok()) {
    std::fprintf(stderr, "joinopt_soak: sentinel generator failed: %s\n",
                 sentinel.status().ToString().c_str());
    return 1;
  }
  const CoutCostModel cost_model;
  const Result<OptimizationResult> sentinel_result =
      OptimizerRegistry::Get("DPccp")->Optimize(*sentinel, cost_model);
  if (!sentinel_result.ok()) {
    std::fprintf(stderr, "joinopt_soak: sentinel baseline failed: %s\n",
                 sentinel_result.status().ToString().c_str());
    return 1;
  }

  SharedState shared;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::thread> threads;
  workers.reserve(config.threads);
  threads.reserve(config.threads);
  std::thread watchdog(Watchdog, std::ref(shared), config.watchdog_seconds,
                       std::cref(config.repro_dir));
  for (int t = 0; t < config.threads; ++t) {
    workers.push_back(
        std::make_unique<Worker>(t, config, shared, sentinel_result->cost));
    threads.emplace_back(&Worker::Run, workers.back().get());
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  shared.done.store(true);
  watchdog.join();

  if (shared.failed.load()) {
    std::fprintf(stderr, "joinopt_soak: FAIL %s\n",
                 shared.failure_detail.c_str());
    return 1;
  }
  std::printf("joinopt_soak: %" PRIu64 " queries x %d threads clean (seed %"
              PRIu64 ")\n",
              config.queries, config.threads, config.seed);
  return 0;
}

}  // namespace
}  // namespace joinopt

int main(int argc, char** argv) {
  joinopt::SoakConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      config.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      config.queries = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--repro-dir") == 0 && i + 1 < argc) {
      config.repro_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      config.verbose = true;
    } else if (std::strcmp(argv[i], "--service") == 0) {
      config.service = true;
    } else if (std::strcmp(argv[i], "--crash-recovery") == 0) {
      config.crash_recovery = true;
    } else if (std::strcmp(argv[i], "--wire") == 0) {
      config.wire = true;
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      config.crash_cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      config.snapshot_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--queries N] [--seed S]"
                   " [--repro-dir DIR] [--service] [--wire]"
                   " [--crash-recovery] [--cycles N] [--snapshot PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if ((config.crash_recovery || config.wire) &&
      (config.crash_cycles < 1 || config.crash_cycles > 64)) {
    std::fprintf(stderr, "joinopt_soak: --cycles must be in [1, 64]\n");
    return 2;
  }
  if (config.threads < 1 || config.threads > 256) {
    std::fprintf(stderr, "joinopt_soak: --threads must be in [1, 256]\n");
    return 2;
  }
  // A typo'd JOINOPT_FAULT_* or limit knob must abort the harness, not
  // silently soak without the intended schedule.
  const joinopt::Result<joinopt::testing::FaultConfig> env_fault =
      joinopt::testing::FaultConfigFromEnv();
  if (!env_fault.ok()) {
    std::fprintf(stderr, "joinopt_soak: %s\n",
                 env_fault.status().ToString().c_str());
    return 2;
  }
  const joinopt::Status env_limits = joinopt::ValidateLimitEnv();
  if (!env_limits.ok()) {
    std::fprintf(stderr, "joinopt_soak: %s\n", env_limits.ToString().c_str());
    return 2;
  }
  const joinopt::Result<double> watchdog_s = joinopt::WatchdogSeconds();
  if (!watchdog_s.ok()) {
    std::fprintf(stderr, "joinopt_soak: %s\n",
                 watchdog_s.status().ToString().c_str());
    return 2;
  }
  config.watchdog_seconds = *watchdog_s;
  if (!config.repro_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.repro_dir, ec);
    if (ec) {
      std::fprintf(stderr, "joinopt_soak: cannot create --repro-dir %s: %s\n",
                   config.repro_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }
  if (config.crash_recovery) {
    return joinopt::RunCrashRecovery(config);
  }
  if (config.wire) {
    return joinopt::RunWireMode(config);
  }
  return config.service ? joinopt::RunServiceMode(config)
                        : joinopt::Run(config);
}
